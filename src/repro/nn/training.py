"""Mini-batch training loop shared by every neural model in the repo.

Mirrors the paper's setup: batch size 32, Adam(lr=1e-3), L1 loss, no
learning-rate or weight decay (Sec. IV-C). Epoch count is configurable so
tests/benchmarks can run CI-scale while ``REPRO_PROFILE=paper`` scales up.

Progress reporting goes through the observer API (``repro.obs.observers``):
``fit`` notifies each observer's ``on_fit_start`` / ``on_epoch`` /
``on_eval`` / ``on_early_stop`` / ``on_fit_end`` hooks, and additionally
emits ``epoch`` / ``eval`` / ``early_stop`` events to any open structured
run logger (``repro.obs.runlog``). ``verbose=True`` is sugar for appending
a :class:`~repro.obs.observers.ConsoleObserver`.

``fit`` also supports full-state checkpointing (``checkpoint_path=`` /
``resume_from=``): weights, optimizer moments, the shuffle RNG's position
and early-stop bookkeeping round-trip through one ``.npz`` file so an
interrupted run resumes bit-exactly (see :mod:`repro.nn.serialization`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import faults
from repro.nn import config, engine, serialization
from repro.nn.divergence import DivergenceError
from repro.nn.layers.base import Module
from repro.nn.losses import get_loss
from repro.nn.optim import Adam, GradScaler, Optimizer, clip_grad_norm, make_optimizer
from repro.nn.tensor import Tensor
from repro.obs import metrics as obs_metrics
from repro.obs import runlog, tracing
from repro.obs.observers import ConsoleObserver, TrainingObserver
from repro.pipeline import seeding
from repro.store.windows import shuffled_batch_indices


@dataclass
class TrainingHistory:
    """Per-epoch loss curves plus wall-clock accounting."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")

    @property
    def best_epoch(self) -> Optional[int]:
        """1-based epoch with the lowest val loss (train loss if no val)."""
        curve = self.val_loss or self.train_loss
        if not curve:
            return None
        return int(np.argmin(curve)) + 1

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    def as_dict(self) -> Dict[str, object]:
        return {
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "epoch_seconds": list(self.epoch_seconds),
            "best_epoch": self.best_epoch,
            "total_seconds": self.total_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrainingHistory":
        """Rebuild curves saved by :meth:`as_dict` (checkpoint resume)."""
        return cls(
            train_loss=[float(v) for v in payload.get("train_loss", [])],
            val_loss=[float(v) for v in payload.get("val_loss", [])],
            epoch_seconds=[float(v) for v in payload.get("epoch_seconds", [])],
        )


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
):
    """Yield ``(x, y)`` mini-batches, shuffled when an rng is given.

    The index schedule is shared with the window store's streamed batches
    (:func:`repro.store.windows.shuffled_batch_indices`), so an in-memory
    epoch and a store-backed epoch consume the RNG identically and yield
    bit-identical batch sequences.
    """
    for index in shuffled_batch_indices(len(inputs), batch_size, rng):
        yield inputs[index], targets[index]


def _is_batch_source(candidate: object) -> bool:
    """Trainer batch-source protocol: ``num_samples`` + ``batches(...)``.

    Satisfied by :class:`repro.store.WindowView` /
    :class:`repro.store.WindowIterator`; epochs then stream chunk-by-chunk
    from the store instead of holding every window in memory.
    """
    return hasattr(candidate, "batches") and hasattr(candidate, "num_samples")


class Trainer:
    """Train a Module mapping input arrays to target arrays.

    The model's ``forward`` must accept a Tensor batch and return a Tensor
    batch with the same shape as the targets.
    """

    def __init__(
        self,
        model: Module,
        loss: str = "l1",
        optimizer: Optional[object] = None,
        lr: float = 1e-3,
        batch_size: int = 32,
        max_grad_norm: Optional[float] = 5.0,
        seed: Optional[int] = None,
    ):
        self.model = model
        self.loss_name = loss if isinstance(loss, str) else getattr(loss, "__name__", "custom")
        self.loss_fn: Callable = get_loss(loss) if isinstance(loss, str) else loss
        if optimizer is None:
            optimizer = Adam(model.parameters(), lr=lr)
        elif isinstance(optimizer, str):
            optimizer = make_optimizer(optimizer, model.parameters(), lr=lr)
        self.optimizer: Optimizer = optimizer
        self.batch_size = batch_size
        self.max_grad_norm = max_grad_norm
        self.seed = seed
        # Seeded trainers get a private stream (bit-compatible with the old
        # default_rng call); unseeded ones share the process generator so a
        # single seeding.seed_everything() pins the whole run.
        self.rng = seeding.rng(seed) if seed is not None else seeding.global_rng()
        # Last good in-memory resume point, refreshed at fit start and each
        # epoch end; repro.resilience rolls back to it after a divergence
        # without requiring a checkpoint file.
        self.last_checkpoint: Optional[serialization.TrainingCheckpoint] = None
        # Mixed precision: dynamic loss scaling (see optim.GradScaler).
        self.scaler: Optional[GradScaler] = (
            GradScaler() if config.mixed_precision() else None
        )

    def _run_info(self, epochs: int, train_count: int, val_count: int) -> Dict:
        return {
            "model": type(self.model).__name__,
            "parameters": self.model.num_parameters(),
            "loss": self.loss_name,
            "epochs": epochs,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "train_samples": train_count,
            "val_samples": val_count,
            "dtype": np.dtype(config.dtype()).name,
            "engine_mode": config.engine_mode(),
            "num_threads": config.num_threads(),
        }

    def fit(
        self,
        train_x: Union[np.ndarray, object],
        train_y: Optional[np.ndarray] = None,
        epochs: int = 1,
        val_x: Optional[np.ndarray] = None,
        val_y: Optional[np.ndarray] = None,
        verbose: bool = False,
        patience: Optional[int] = None,
        observers: Optional[Sequence[TrainingObserver]] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        resume_from: Optional[Union[str, serialization.TrainingCheckpoint]] = None,
    ) -> TrainingHistory:
        """Run the training loop; early-stops on validation loss if asked.

        ``checkpoint_path`` autosaves a full resume point (weights +
        optimizer + RNG + epoch bookkeeping) every ``checkpoint_every``
        epochs; ``resume_from`` restores one — from a path or directly from
        an in-memory :class:`~repro.nn.serialization.TrainingCheckpoint`
        (how the recovery policy rolls back) — and continues mid-training
        bit-exactly: the resumed run's weights and loss curves match an
        uninterrupted run to the last bit.

        ``train_x`` may also be a *batch source* (``num_samples`` +
        ``batches(batch_size, rng)``, e.g. a ``repro.store`` window view)
        with ``train_y=None``: each epoch then streams batches from the
        chunked store, bit-identical to the in-memory loop because the
        source consumes ``self.rng`` through the same shuffle schedule.
        ``val_x`` may likewise be a view exposing ``arrays()``.
        """
        streaming = train_y is None and _is_batch_source(train_x)
        if train_y is None and not streaming:
            raise TypeError(
                "fit() needs target arrays, or a batch source "
                "(num_samples + batches()) as train_x with train_y=None"
            )
        if val_x is not None and val_y is None and hasattr(val_x, "arrays"):
            val_x, val_y = val_x.arrays()
        train_count = train_x.num_samples if streaming else len(train_x)
        watchers: List[TrainingObserver] = list(observers) if observers else []
        if verbose:
            watchers.append(ConsoleObserver())
        history = TrainingHistory()
        best_val = float("inf")
        best_state = None
        stale = 0
        start_epoch = 0
        if resume_from is not None:
            if isinstance(resume_from, serialization.TrainingCheckpoint):
                checkpoint = resume_from
            else:
                checkpoint = serialization.load_checkpoint(resume_from)
            start_epoch, best_val, stale, best_state = self._restore_checkpoint(checkpoint)
            history = TrainingHistory.from_dict(checkpoint.history)
            if checkpoint.stopped:
                # The interrupted run had already early-stopped: it ended
                # holding its best weights, so finish the same way.
                if best_state is not None:
                    self.model.load_state_dict(best_state)
                return history
        run_info = self._run_info(
            epochs, train_count, len(val_x) if val_x is not None else 0
        )
        if start_epoch:
            run_info["resumed_at_epoch"] = start_epoch
        for watcher in watchers:
            watcher.on_fit_start(run_info)
        self.last_checkpoint = self._capture(start_epoch, history, best_val, stale, best_state)
        step = 0
        for epoch in range(start_epoch, epochs):
            start = time.perf_counter()
            epoch_losses = []
            self.model.train()
            stopped_early = False
            if streaming:
                epoch_batches = train_x.batches(self.batch_size, rng=self.rng)
            else:
                epoch_batches = iterate_minibatches(
                    train_x, train_y, self.batch_size, rng=self.rng
                )
            with tracing.span("train.epoch", epoch=epoch + 1):
                for batch_x, batch_y in epoch_batches:
                    with tracing.span("train.step", step=step + 1, epoch=epoch + 1):
                        try:
                            loss = self.train_step(batch_x, batch_y)
                        except DivergenceError as exc:
                            if exc.step is None and exc.epoch is None:
                                # Substrate raisers (clip_grad_norm) don't
                                # know the loop position; re-raise with it
                                # for the recovery policy's rollback record.
                                raise DivergenceError(
                                    exc.reason,
                                    str(exc),
                                    step=step + 1,
                                    epoch=epoch + 1,
                                    value=exc.value,
                                ) from exc
                            raise
                    epoch_losses.append(loss)
                    step += 1
                    if watchers:
                        step_info = {"step": step, "epoch": epoch + 1, "loss": loss}
                        for watcher in watchers:
                            watcher.on_step(step_info)
                history.train_loss.append(float(np.mean(epoch_losses)))
                history.epoch_seconds.append(time.perf_counter() - start)

                if val_x is not None and val_y is not None:
                    with tracing.span("train.eval", epoch=epoch + 1):
                        val = self.evaluate(val_x, val_y)
                    history.val_loss.append(val)
                    eval_info = {"epoch": epoch + 1, "val_loss": val}
                    for watcher in watchers:
                        watcher.on_eval(eval_info)
                    runlog.emit("eval", **eval_info)
                    if val < best_val - 1e-9:
                        best_val = val
                        stale = 0
                        if patience is not None:
                            best_state = self.model.state_dict()
                    else:
                        stale += 1
                        if patience is not None and stale > patience:
                            stopped_early = True

            epoch_info = {
                "epoch": epoch + 1,
                "epochs": epochs,
                "train_loss": history.train_loss[-1],
                "val_loss": history.val_loss[-1] if history.val_loss else None,
                "seconds": history.epoch_seconds[-1],
            }
            for watcher in watchers:
                watcher.on_epoch(epoch_info)
            runlog.emit("epoch", **epoch_info)

            self.last_checkpoint = self._capture(
                epoch + 1, history, best_val, stale, best_state, stopped=stopped_early
            )
            if checkpoint_path is not None and (
                (epoch + 1) % checkpoint_every == 0
                or stopped_early
                or epoch + 1 == epochs
            ):
                serialization.write_checkpoint(checkpoint_path, self.last_checkpoint)

            if stopped_early:
                stop_info = {
                    "epoch": epoch + 1,
                    "patience": patience,
                    "best_val_loss": best_val,
                    "best_epoch": history.best_epoch,
                }
                for watcher in watchers:
                    watcher.on_early_stop(stop_info)
                runlog.emit("early_stop", **stop_info)
                if best_state is not None:
                    self.model.load_state_dict(best_state)
                break
        end_info = {
            "epochs_run": len(history.train_loss),
            "best_epoch": history.best_epoch,
            "best_val_loss": history.best_val_loss,
            "total_seconds": history.total_seconds,
        }
        for watcher in watchers:
            watcher.on_fit_end(end_info)
        return history

    # ------------------------------------------------------------------
    # Full-state checkpointing.
    # ------------------------------------------------------------------
    def _capture(
        self,
        epoch: int,
        history: TrainingHistory,
        best_val: float = float("inf"),
        stale: int = 0,
        best_state=None,
        stopped: bool = False,
        extra: Optional[Dict] = None,
    ) -> serialization.TrainingCheckpoint:
        """Snapshot this trainer's exact position as an in-memory checkpoint."""
        payload = {"seed": self.seed}
        if self.scaler is not None:
            payload["scaler"] = self.scaler.state_dict()
        if extra:
            payload.update(extra)
        return serialization.build_checkpoint(
            self.model,
            optimizer=self.optimizer,
            epoch=epoch,
            history=history.as_dict() if isinstance(history, TrainingHistory) else history,
            best_val=best_val,
            stale=stale,
            stopped=stopped,
            rng_state=seeding.get_state(self.rng),
            best_state=best_state,
            loss=self.loss_name,
            extra=payload,
        )

    def save_checkpoint(
        self,
        path: str,
        epoch: int,
        history: TrainingHistory,
        best_val: float = float("inf"),
        stale: int = 0,
        best_state=None,
        stopped: bool = False,
        extra: Optional[Dict] = None,
    ) -> None:
        """Write a resume point capturing this trainer's exact position."""
        serialization.write_checkpoint(
            path,
            self._capture(
                epoch,
                history,
                best_val=best_val,
                stale=stale,
                best_state=best_state,
                stopped=stopped,
                extra=extra,
            ),
        )

    def _restore_checkpoint(self, checkpoint: serialization.TrainingCheckpoint):
        """Load model/optimizer/RNG state; returns (epoch, best_val, stale, best_state)."""
        checkpoint.restore_model(self.model)
        if checkpoint.optimizer_state is not None:
            checkpoint.restore_optimizer(self.optimizer)
        if checkpoint.rng_state is not None:
            seeding.set_state(self.rng, checkpoint.rng_state)
        scaler_state = (checkpoint.extra or {}).get("scaler")
        if self.scaler is not None and scaler_state:
            self.scaler.load_state_dict(scaler_state)
        return checkpoint.epoch, checkpoint.best_val, checkpoint.stale, checkpoint.best_state

    def train_step(self, batch_x: np.ndarray, batch_y: np.ndarray) -> float:
        """One optimizer update; returns the batch loss.

        With ``REPRO_NUM_THREADS > 1`` the mini-batch is sharded across the
        engine's worker pool (numpy/scipy release the GIL); at the default
        of 1 this is the plain serial loop, byte-for-byte.

        Under mixed precision (``self.scaler`` set) the backward pass runs
        on the scaled loss; an overflowed step is skipped (gradients
        dropped, scale halved) and the *finite* unscaled batch loss is
        returned, so a skipped step never trips the divergence sentinel.
        """
        workers = config.num_threads()
        if workers <= 1 or len(batch_x) < 2:
            self.optimizer.zero_grad()
            prediction = self.model(Tensor(batch_x))
            loss = self.loss_fn(prediction, Tensor(batch_y))
            if self.scaler is not None:
                self.scaler.scale_loss(loss).backward()
            else:
                loss.backward()
            loss_value = float(loss.data)
        else:
            self.optimizer.zero_grad()
            loss_value = self._sharded_loss_and_grads(
                batch_x, batch_y, shards=workers, use_pool=True
            )
        faults.poison_gradients(self.optimizer.parameters)
        if self._overflow_skipped():
            return loss_value
        if self.max_grad_norm is not None:
            clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        if self.scaler is not None:
            self.scaler.update()
        return loss_value

    def _overflow_skipped(self) -> bool:
        """Mixed precision only: skip the step when gradients overflowed.

        On overflow the gradients are dropped and the loss scale halved
        (``GradScaler.backoff`` raises ``loss_scale_floor`` once the scale
        cannot back off further). Otherwise gradients are unscaled in
        place, ready for clipping and the optimizer step.
        """
        if self.scaler is None:
            return False
        if not self.scaler.found_overflow(self.optimizer.parameters):
            self.scaler.unscale_(self.optimizer.parameters)
            obs_metrics.gauge("amp_loss_scale").set(self.scaler.scale)
            return False
        self.optimizer.zero_grad()
        self.scaler.backoff()
        obs_metrics.counter("amp_overflow_steps_total").inc()
        obs_metrics.gauge("amp_loss_scale").set(self.scaler.scale)
        runlog.emit("amp_overflow", scale=self.scaler.scale)
        return True

    @staticmethod
    def _shard_slices(count: int, shards: int) -> List[slice]:
        """Contiguous, balanced shard slices (np.array_split layout)."""
        shards = min(shards, count)
        base, extra = divmod(count, shards)
        slices = []
        start = 0
        for index in range(shards):
            size = base + (1 if index < extra else 0)
            slices.append(slice(start, start + size))
            start += size
        return slices

    def _sharded_loss_and_grads(
        self,
        batch_x: np.ndarray,
        batch_y: np.ndarray,
        shards: int,
        use_pool: bool,
    ) -> float:
        """Forward/backward over shards; accumulate gradients into params.

        Each shard backpropagates into a private gradient sink, and the sinks
        are merged in shard-index order with sample-count weights — so the
        result is a pure function of the shard decomposition, independent of
        worker scheduling. ``use_pool=False`` runs the identical shards
        serially (the determinism reference).

        The combined loss is the sample-weighted mean of the per-shard mean
        losses, which equals the full-batch mean loss up to summation order.
        """
        count = len(batch_x)
        slices = self._shard_slices(count, shards)
        # Shards run on pool threads whose span stacks are empty; capture the
        # dispatching thread's context so their spans stay in this trace.
        parent = tracing.current_context()

        def run_shard(shard: slice):
            with tracing.span("train.shard", parent=parent):
                prediction = self.model(Tensor(batch_x[shard]))
                loss = self.loss_fn(prediction, Tensor(batch_y[shard]))
                sink: Dict = {}
                backprop_root = (
                    self.scaler.scale_loss(loss) if self.scaler is not None else loss
                )
                backprop_root.backward(sink=sink)
                return float(loss.data), sink

        if use_pool:
            executor = engine.get_executor(len(slices))
            try:
                results = list(executor.map(run_shard, slices))
            except BaseException:
                # A shard that raises (fault injection, divergence, OOM)
                # leaves sibling shards still running against the same
                # model; tear the pool down — cancelling queued shards and
                # waiting out in-flight ones — so a rollback-and-retry
                # never races a zombie worker from the failed step.
                engine.reset_executor(wait=True)
                raise
            obs_metrics.counter("train_sharded_steps_total").inc()
        else:
            results = [run_shard(shard) for shard in slices]

        loss_value = 0.0
        weights = [(s.stop - s.start) / count for s in slices]
        for weight, (shard_loss, _) in zip(weights, results):
            loss_value += weight * shard_loss
        for param in self.optimizer.parameters:
            total = None
            for weight, (_, sink) in zip(weights, results):
                grad = sink.get(id(param))
                if grad is None:
                    continue
                contribution = grad * weight
                total = contribution if total is None else total + contribution
            if total is not None:
                param.grad = total if param.grad is None else param.grad + total
        return loss_value

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over a dataset without building autograd graphs."""
        was_training = self.model.training
        self.model.eval()
        losses = []
        weights = []
        with config.no_grad():
            for batch_x, batch_y in iterate_minibatches(inputs, targets, self.batch_size):
                prediction = self.model(Tensor(batch_x))
                loss = self.loss_fn(prediction, Tensor(batch_y))
                losses.append(float(loss.data))
                weights.append(len(batch_x))
        self.model.train(was_training)
        return float(np.average(losses, weights=weights))

    def predict(self, inputs: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Batched forward pass returning a numpy array."""
        was_training = self.model.training
        self.model.eval()
        batch_size = batch_size or self.batch_size
        outputs = []
        with config.no_grad():
            for start in range(0, len(inputs), batch_size):
                batch = Tensor(inputs[start : start + batch_size])
                outputs.append(self.model(batch).data)
        self.model.train(was_training)
        return np.concatenate(outputs, axis=0)
