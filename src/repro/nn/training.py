"""Mini-batch training loop shared by every neural model in the repo.

Mirrors the paper's setup: batch size 32, Adam(lr=1e-3), L1 loss, no
learning-rate or weight decay (Sec. IV-C). Epoch count is configurable so
tests/benchmarks can run CI-scale while ``REPRO_PROFILE=paper`` scales up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn import config
from repro.nn.layers.base import Module
from repro.nn.losses import get_loss
from repro.nn.optim import Adam, Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor


@dataclass
class TrainingHistory:
    """Per-epoch loss curves plus wall-clock accounting."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "epoch_seconds": list(self.epoch_seconds),
        }


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
):
    """Yield ``(x, y)`` mini-batches, shuffled when an rng is given."""
    count = len(inputs)
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield inputs[index], targets[index]


class Trainer:
    """Train a Module mapping input arrays to target arrays.

    The model's ``forward`` must accept a Tensor batch and return a Tensor
    batch with the same shape as the targets.
    """

    def __init__(
        self,
        model: Module,
        loss: str = "l1",
        optimizer: Optional[Optimizer] = None,
        lr: float = 1e-3,
        batch_size: int = 32,
        max_grad_norm: Optional[float] = 5.0,
        seed: Optional[int] = None,
    ):
        self.model = model
        self.loss_fn: Callable = get_loss(loss) if isinstance(loss, str) else loss
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr)
        self.batch_size = batch_size
        self.max_grad_norm = max_grad_norm
        self.rng = np.random.default_rng(seed)

    def fit(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        epochs: int,
        val_x: Optional[np.ndarray] = None,
        val_y: Optional[np.ndarray] = None,
        verbose: bool = False,
        patience: Optional[int] = None,
    ) -> TrainingHistory:
        """Run the training loop; early-stops on validation loss if asked."""
        history = TrainingHistory()
        best_val = float("inf")
        best_state = None
        stale = 0
        for epoch in range(epochs):
            start = time.perf_counter()
            epoch_losses = []
            self.model.train()
            for batch_x, batch_y in iterate_minibatches(
                train_x, train_y, self.batch_size, rng=self.rng
            ):
                loss = self.train_step(batch_x, batch_y)
                epoch_losses.append(loss)
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.epoch_seconds.append(time.perf_counter() - start)

            if val_x is not None and val_y is not None:
                val = self.evaluate(val_x, val_y)
                history.val_loss.append(val)
                if val < best_val - 1e-9:
                    best_val = val
                    stale = 0
                    if patience is not None:
                        best_state = self.model.state_dict()
                else:
                    stale += 1
                    if patience is not None and stale > patience:
                        if best_state is not None:
                            self.model.load_state_dict(best_state)
                        break
            if verbose:
                val_part = f" val={history.val_loss[-1]:.4f}" if history.val_loss else ""
                print(
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={history.train_loss[-1]:.4f}{val_part} "
                    f"({history.epoch_seconds[-1]:.1f}s)"
                )
        return history

    def train_step(self, batch_x: np.ndarray, batch_y: np.ndarray) -> float:
        """One optimizer update; returns the batch loss."""
        self.optimizer.zero_grad()
        prediction = self.model(Tensor(batch_x))
        loss = self.loss_fn(prediction, Tensor(batch_y))
        loss.backward()
        if self.max_grad_norm is not None:
            clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        return float(loss.data)

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over a dataset without building autograd graphs."""
        self.model.eval()
        losses = []
        weights = []
        with config.no_grad():
            for batch_x, batch_y in iterate_minibatches(inputs, targets, self.batch_size):
                prediction = self.model(Tensor(batch_x))
                loss = self.loss_fn(prediction, Tensor(batch_y))
                losses.append(float(loss.data))
                weights.append(len(batch_x))
        self.model.train()
        return float(np.average(losses, weights=weights))

    def predict(self, inputs: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Batched forward pass returning a numpy array."""
        self.model.eval()
        batch_size = batch_size or self.batch_size
        outputs = []
        with config.no_grad():
            for start in range(0, len(inputs), batch_size):
                batch = Tensor(inputs[start : start + batch_size])
                outputs.append(self.model(batch).data)
        self.model.train()
        return np.concatenate(outputs, axis=0)
