"""Finite-difference gradient verification for autograd ops.

Every differentiable primitive in the substrate is validated against central
finite differences in the test suite; model-level modules reuse the same
helper through :func:`gradcheck_module`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import engine
from repro.nn.tensor import Tensor


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = float(fn(*inputs).data.sum())
        flat[i] = original - epsilon
        lower = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-6,
    rtol: float = 1e-4,
    epsilon: float = 1e-5,
) -> None:
    """Assert analytic gradients of ``sum(fn(*inputs))`` match finite differences.

    Raises ``AssertionError`` with the worst offending input index on mismatch.

    Runs with the engine's identity-keyed caches bypassed: the central
    differences perturb ``tensor.data`` in place without bumping the weight
    version, which would otherwise serve stale kernel FFTs / masked weights.
    """
    with engine.no_cache():
        for tensor in inputs:
            tensor.zero_grad()
        output = fn(*inputs)
        output.sum().backward()
        for index, tensor in enumerate(inputs):
            if not tensor.requires_grad:
                continue
            analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
            numeric = numeric_gradient(fn, inputs, index, epsilon=epsilon)
            if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
                worst = np.max(np.abs(analytic - numeric))
                raise AssertionError(
                    f"gradient mismatch on input {index}: max abs diff {worst:.3e}\n"
                    f"analytic:\n{analytic}\nnumeric:\n{numeric}"
                )


def gradcheck_module(module, *inputs, atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Gradcheck a Module's forward w.r.t. inputs and all its parameters."""
    params = list(module.parameters())
    tensors = list(inputs) + params

    def fn(*tensors_in):
        # Parameters are checked in place: numeric_gradient perturbs
        # tensor.data directly, which the module reads on forward.
        return module(*tensors_in[: len(inputs)])

    check_gradients(fn, tensors, atol=atol, rtol=rtol)
