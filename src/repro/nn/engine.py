"""Execution-plan layer for the numpy substrate.

Every experiment in this reproduction funnels through the same handful of
numpy kernels, and training repeats them thousands of times on identical
shapes. This module reuses the work that is invariant across those calls:

- **Plan cache** — conv dispatch decisions (einsum vs. GEMM vs. FFT) and
  ``np.einsum`` contraction paths, keyed by shape/dtype signatures. Looked
  up once per signature, hit thereafter (``engine_plan_cache_*`` counters).
- **Weight-derived caches** — the precomputed kernel FFT and the masked
  effective weight (pyramid gating) are invariant while the weights are
  unchanged; entries are keyed by the weight array's identity plus a global
  *weight version* that optimizers bump on every step (and
  ``Module.load_state_dict`` on every load), so a stale kernel FFT can
  never survive a weight update.
- **Workspace arena** — per-thread buffer pools that recycle the large
  transient arrays the conv path allocates every call (stride-stuffed
  gradients, padded inputs, im2col columns). ``engine_arena_bytes_reused_total``
  tracks the traffic the allocator no longer sees.
- **Worker pool** — a lazily-built thread pool for intra-step batch
  sharding (numpy/scipy release the GIL); :mod:`repro.nn.training` shards
  mini-batches across it with deterministic, shard-ordered gradient
  accumulation.

All knobs live in :mod:`repro.nn.config` (``REPRO_*`` environment
variables); behaviour and calibration notes are documented in
docs/PERFORMANCE.md.

Identity-keyed caches are only coherent if in-place weight mutation goes
through an optimizer step or a state-dict load. Code that perturbs
``param.data`` directly (e.g. finite-difference gradcheck) must run inside
:func:`no_cache`, which bypasses them.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn import config
from repro.obs import metrics as obs_metrics

# Conv execution strategies the planner can choose from.
PLAN_EINSUM = "einsum"
PLAN_GEMM = "gemm"
PLAN_FFT = "fft"


# ---------------------------------------------------------------------------
# Cache-coherency state
# ---------------------------------------------------------------------------

_weight_version = 0
_cache_bypass = threading.local()


def weight_version() -> int:
    """Monotonic counter identifying the current generation of weights."""
    return _weight_version


def bump_weight_version() -> None:
    """Invalidate weight-derived caches (kernel FFTs, masked weights).

    Called by every optimizer step and ``load_state_dict``; call it manually
    after mutating a parameter's ``data`` in place by any other route.
    """
    global _weight_version
    _weight_version += 1


def caches_enabled() -> bool:
    """Whether identity-keyed caches may be consulted on this thread."""
    if getattr(_cache_bypass, "depth", 0):
        return False
    return config.plan_cache_enabled()


@contextlib.contextmanager
def no_cache():
    """Bypass identity-keyed caches inside the block (this thread only).

    Required around code that mutates parameter data in place without an
    optimizer step — the finite-difference gradcheck is the canonical user.
    Pure shape-keyed plans (dispatch decisions, einsum paths) stay active;
    they are functions of the signature alone and cannot go stale. Fused
    kernels (:mod:`repro.nn.fusion`) are also disabled inside the block:
    although bit-equivalent by construction, the bypass guarantees the
    gradcheck exercises the exact unfused op graph it differentiates.
    """
    _cache_bypass.depth = getattr(_cache_bypass, "depth", 0) + 1
    try:
        yield
    finally:
        _cache_bypass.depth -= 1


def fusion_active() -> bool:
    """Whether fused kernels may replace the unfused op chain right now.

    False whenever the plan cache is bypassed (``no_cache()`` /
    ``REPRO_PLAN_CACHE=0``) or fusion is disabled (``REPRO_FUSION=0``).
    """
    return caches_enabled() and config.fusion_enabled()


# ---------------------------------------------------------------------------
# Plan cache: conv dispatch + einsum contraction paths
# ---------------------------------------------------------------------------

_plan_lock = threading.Lock()
_conv_plans: Dict[Tuple, str] = {}
_einsum_paths: Dict[Tuple, list] = {}
_fused_plans: Dict[Tuple, object] = {}


def _plan_hit(kind: str) -> None:
    obs_metrics.counter("engine_plan_cache_hits_total", kind=kind).inc()


def _plan_miss(kind: str) -> None:
    obs_metrics.counter("engine_plan_cache_misses_total", kind=kind).inc()


def fused_plan(key: Tuple, builder: Callable[[], object]):
    """Shape-keyed cache of compiled fused-kernel plans.

    ``key[0]`` names the fused kernel kind (``lstm_gates``, ``squash``,
    ``routing``, …) and the rest pins the full shape/dtype signature.
    Returns ``None`` when fusion is inactive (``no_cache()`` or
    ``REPRO_FUSION=0``) so call sites fall back to the unfused op chain;
    hit/miss traffic is exported as ``engine_fusion_cache_*_total``.
    """
    if not fusion_active():
        return None
    with _plan_lock:
        plan = _fused_plans.get(key)
    if plan is not None:
        obs_metrics.counter("engine_fusion_cache_hits_total", kind=key[0]).inc()
        return plan
    plan = builder()
    with _plan_lock:
        _fused_plans[key] = plan
    obs_metrics.counter("engine_fusion_cache_misses_total", kind=key[0]).inc()
    return plan


def _fused_regime(dtype) -> bool:
    """Whether the aggressive fused-regime float32 dispatch rule applies.

    The recalibrated FFT threshold ships with the fusion work and is gated
    on the same knob, so ``REPRO_FUSION=0`` reproduces the exact pre-fusion
    execution plans (the bench baseline and the bit-parity reference).
    """
    return np.dtype(dtype).itemsize == 4 and config.fusion_enabled()


def _choose_conv_forward_plan(
    batch: int, channels: int, out_spatial, kernel, dtype
) -> str:
    """Pick the conv forward strategy for one signature.

    Calibrated on this machine (docs/PERFORMANCE.md): FFT wins for big
    kernels or very large im2col footprints in either dtype. The
    im2col+GEMM path beats einsum only for *flat* (depth-1) kernels — the
    2-D convs routed through the 3-D path, e.g. the routing vote transform —
    in float64 above ~1.5M im2col elements; for deep kernels einsum's
    blocked reduction over the strided view beats paying for the column
    copy, and float32 einsum is SIMD-friendly enough that GEMM never pays
    for itself below the FFT threshold.
    """
    kernel_volume = int(np.prod(kernel))
    if kernel_volume >= config.conv_fft_min_kernel_volume():
        return PLAN_FFT
    im2col_elements = batch * channels * int(np.prod(out_spatial)) * kernel_volume
    if im2col_elements >= config.conv_fft_min_im2col_elements():
        return PLAN_FFT
    if _fused_regime(dtype) and im2col_elements >= config.conv_fft_min_im2col_fused():
        return PLAN_FFT
    if (
        tuple(kernel)[0] == 1
        and np.dtype(dtype).itemsize == 8
        and im2col_elements >= config.conv_gemm_min_elements()
    ):
        return PLAN_GEMM
    return PLAN_EINSUM


def _choose_conv_weight_grad_plan(
    batch: int, channels: int, out_spatial, kernel, dtype
) -> str:
    """Weight-grad strategy: FFT thresholds as before, GEMM otherwise.

    The weight-grad contraction reduces over the huge (batch × output
    positions) axis into a tiny kernel — a tall-skinny GEMM that BLAS wins
    at every calibrated size in both dtypes, so there is no einsum branch.
    """
    kernel_volume = int(np.prod(kernel))
    if kernel_volume >= config.conv_fft_min_kernel_volume():
        return PLAN_FFT
    im2col_elements = batch * channels * int(np.prod(out_spatial)) * kernel_volume
    if im2col_elements >= config.conv_fft_min_im2col_elements():
        return PLAN_FFT
    if _fused_regime(dtype) and im2col_elements >= config.conv_fft_min_im2col_fused():
        return PLAN_FFT
    return PLAN_GEMM


def conv_forward_plan(batch, channels, out_spatial, kernel, dtype) -> str:
    key = (
        "conv_fwd",
        batch,
        channels,
        tuple(out_spatial),
        tuple(kernel),
        np.dtype(dtype).str,
        _fused_regime(dtype),
    )
    with _plan_lock:
        plan = _conv_plans.get(key)
    if plan is not None:
        _plan_hit("conv_forward")
        return plan
    plan = _choose_conv_forward_plan(batch, channels, out_spatial, kernel, dtype)
    with _plan_lock:
        _conv_plans[key] = plan
    _plan_miss("conv_forward")
    return plan


def conv_weight_grad_plan(batch, channels, out_spatial, kernel, dtype) -> str:
    key = (
        "conv_wgrad",
        batch,
        channels,
        tuple(out_spatial),
        tuple(kernel),
        np.dtype(dtype).str,
        _fused_regime(dtype),
    )
    with _plan_lock:
        plan = _conv_plans.get(key)
    if plan is not None:
        _plan_hit("conv_weight_grad")
        return plan
    plan = _choose_conv_weight_grad_plan(batch, channels, out_spatial, kernel, dtype)
    with _plan_lock:
        _conv_plans[key] = plan
    _plan_miss("conv_weight_grad")
    return plan


def einsum(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum`` with the contraction path cached per shape signature."""
    key = (subscripts,) + tuple(
        (op.shape, np.dtype(op.dtype).str) for op in operands
    )
    with _plan_lock:
        path = _einsum_paths.get(key)
    if path is None:
        path = np.einsum_path(subscripts, *operands, optimize=True)[0]
        with _plan_lock:
            _einsum_paths[key] = path
        _plan_miss("einsum_path")
    else:
        _plan_hit("einsum_path")
    return np.einsum(subscripts, *operands, optimize=path)


# ---------------------------------------------------------------------------
# Weight-derived caches (kernel FFTs, masked effective weights)
# ---------------------------------------------------------------------------

class _WeightCache:
    """Identity-keyed cache of arrays derived from (unchanging) weights.

    An entry is valid only while (a) the exact source array object is still
    alive (held by weakref, so a recycled ``id`` can never alias) and
    (b) the global weight version has not moved since it was built.
    """

    def __init__(self, name: str, capacity: int = 128):
        self.name = name
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: Dict[Tuple, Tuple[weakref.ref, int, np.ndarray]] = {}

    def get_or_build(
        self,
        source: np.ndarray,
        key_extra: Tuple,
        builder: Callable[[], np.ndarray],
        extra_source: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if not caches_enabled():
            return builder()
        key = (id(source),) + key_extra
        version = _weight_version
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            refs, entry_version, value = entry
            if entry_version == version and all(
                ref() is origin for ref, origin in zip(refs, (source, extra_source))
            ):
                obs_metrics.counter(f"engine_{self.name}_cache_hits_total").inc()
                return value
        value = builder()
        try:
            refs = (weakref.ref(source),) + (
                (weakref.ref(extra_source),) if extra_source is not None else ()
            )
        except TypeError:
            # Non-weakrefable sources (rare array subclasses) are not cached.
            return value
        with self._lock:
            if len(self._entries) >= self.capacity:
                self._entries.clear()
            self._entries[key] = (refs, version, value)
        obs_metrics.counter(f"engine_{self.name}_cache_misses_total").inc()
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


_kernel_fft_cache = _WeightCache("kernel_fft")
_masked_weight_cache = _WeightCache("masked_weight")


def kernel_fft(
    source: np.ndarray, key_extra: Tuple, builder: Callable[[], np.ndarray]
) -> np.ndarray:
    """Cache an FFT derived from kernel array ``source``.

    ``key_extra`` must pin down everything else the transform depends on
    (padded extent, flip, and — since kernels often arrive as flip/transpose
    views of a parameter — the view's memory layout).
    """
    return _kernel_fft_cache.get_or_build(source, tuple(key_extra), builder)


def masked_weight(w: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Cache ``w * mask`` (the pyramid convolution's gated kernel)."""
    return _masked_weight_cache.get_or_build(
        w, (id(mask), w.shape), lambda: w * mask, extra_source=mask
    )


def clear_caches() -> None:
    """Drop every cached plan and weight-derived entry (tests, benchmarks)."""
    with _plan_lock:
        _conv_plans.clear()
        _einsum_paths.clear()
        _fused_plans.clear()
    _kernel_fft_cache.clear()
    _masked_weight_cache.clear()


def _sum_counters(prefix: str) -> float:
    counters = obs_metrics.get_registry().snapshot()["counters"]
    return sum(
        value
        for key, value in counters.items()
        if key == prefix or key.startswith(prefix + "{")
    )


def plan_cache_stats() -> Dict[str, object]:
    """Live plan-cache statistics (entries, hit/miss traffic, arena bytes).

    Entry counts come straight from the cache dicts; hit/miss totals are the
    accumulated ``engine_*_cache_*_total`` counters (summed over their
    ``kind`` label); arena bytes cover *this thread's* pooled buffers plus
    the process-wide reuse counter.
    """
    with _plan_lock:
        entries = {
            "conv_plans": len(_conv_plans),
            "einsum_paths": len(_einsum_paths),
            "fused_kernels": len(_fused_plans),
        }
    with _kernel_fft_cache._lock:
        entries["kernel_fft"] = len(_kernel_fft_cache._entries)
    with _masked_weight_cache._lock:
        entries["masked_weight"] = len(_masked_weight_cache._entries)
    pooled_bytes = sum(
        buffer.nbytes
        for stack in getattr(_arena_local, "pools", {}).values()
        for buffer in stack
    )
    return {
        "entries": entries,
        "hits": _sum_counters("engine_plan_cache_hits_total"),
        "misses": _sum_counters("engine_plan_cache_misses_total"),
        "fusion_hits": _sum_counters("engine_fusion_cache_hits_total"),
        "fusion_misses": _sum_counters("engine_fusion_cache_misses_total"),
        "arena_pooled_bytes": pooled_bytes,
        "arena_bytes_reused": _sum_counters("engine_arena_bytes_reused_total"),
    }


def publish_plan_cache_stats() -> Dict[str, object]:
    """Export :func:`plan_cache_stats` as ``repro.obs`` gauges and return it."""
    stats = plan_cache_stats()
    for kind, count in stats["entries"].items():
        obs_metrics.gauge("engine_plan_cache_entries", kind=kind).set(count)
    obs_metrics.gauge("engine_arena_pooled_bytes").set(stats["arena_pooled_bytes"])
    return stats


# ---------------------------------------------------------------------------
# Inference warm-up
# ---------------------------------------------------------------------------


def warmup(
    forward: Callable[[np.ndarray], np.ndarray],
    example_shape: Tuple[int, ...],
    batch_sizes: Tuple[int, ...] = (1,),
    dtype=None,
) -> int:
    """Prime the shape-keyed caches behind an inference path.

    Runs ``forward`` once per requested batch size on zero-filled inputs of
    shape ``(batch,) + example_shape``, discarding the outputs. Every plan
    in this module is keyed by the *full* shape signature — batch included —
    so a service must warm each batch size it will actually serve (e.g. 1
    and its micro-batch cap), or the first real request at that size pays
    for conv dispatch planning, einsum path search and kernel-FFT
    construction. Returns the number of forward calls made.
    """
    dtype = np.dtype(dtype if dtype is not None else config.dtype())
    calls = 0
    with config.no_grad():
        for batch in batch_sizes:
            if batch < 1:
                raise ValueError(f"warm-up batch sizes must be >= 1, got {batch}")
            forward(np.zeros((int(batch),) + tuple(example_shape), dtype=dtype))
            calls += 1
    obs_metrics.counter("engine_warmup_runs_total").inc(calls)
    return calls


# ---------------------------------------------------------------------------
# Workspace arena
# ---------------------------------------------------------------------------

_MAX_POOLED_PER_KEY = 4

_arena_local = threading.local()


def _arena_pools() -> Dict[Tuple, List[np.ndarray]]:
    pools = getattr(_arena_local, "pools", None)
    if pools is None:
        pools = _arena_local.pools = {}
    return pools


def arena_empty(shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Borrow an uninitialised buffer from this thread's pool.

    The caller owns the buffer until it passes it back via
    :func:`arena_release`; escaping buffers are simply never released and
    the pool forgets them.
    """
    if not config.arena_enabled():
        return np.empty(shape, dtype=dtype)
    key = (tuple(shape), np.dtype(dtype).str)
    stack = _arena_pools().get(key)
    if stack:
        buffer = stack.pop()
        obs_metrics.counter("engine_arena_bytes_reused_total").inc(buffer.nbytes)
        return buffer
    return np.empty(shape, dtype=dtype)


def arena_zeros(shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Borrow a zero-filled buffer from this thread's pool."""
    if not config.arena_enabled():
        return np.zeros(shape, dtype=dtype)
    key = (tuple(shape), np.dtype(dtype).str)
    stack = _arena_pools().get(key)
    if stack:
        buffer = stack.pop()
        buffer.fill(0)
        obs_metrics.counter("engine_arena_bytes_reused_total").inc(buffer.nbytes)
        return buffer
    return np.zeros(shape, dtype=dtype)


def arena_release(buffer: np.ndarray) -> None:
    """Return a borrowed buffer to this thread's pool.

    Only call this for buffers whose data does not escape the borrowing
    function — a released buffer will be handed out (and overwritten) by a
    later borrow.
    """
    if not config.arena_enabled():
        return
    key = (buffer.shape, np.dtype(buffer.dtype).str)
    pools = _arena_pools()
    stack = pools.setdefault(key, [])
    if len(stack) < _MAX_POOLED_PER_KEY:
        stack.append(buffer)


def arena_clear() -> None:
    """Drop this thread's pooled buffers."""
    getattr(_arena_local, "pools", {}) and _arena_local.pools.clear()


# ---------------------------------------------------------------------------
# Worker pool for intra-step batch sharding
# ---------------------------------------------------------------------------

_executor_lock = threading.Lock()
_executor: Optional[ThreadPoolExecutor] = None
_executor_size = 0


def get_executor(workers: int) -> ThreadPoolExecutor:
    """A process-wide thread pool, rebuilt when the requested size grows.

    The rebuild waits for the old pool's workers to drain: a non-blocking
    shutdown would strand threads still chewing on shard work (e.g. after an
    exception escaped a sharded train step), and repeated rebuilds across
    recovery retries would leak a pool's worth of threads each time.
    """
    global _executor, _executor_size
    with _executor_lock:
        if _executor is None or _executor_size < workers:
            if _executor is not None:
                _executor.shutdown(wait=True, cancel_futures=True)
            _executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-engine"
            )
            _executor_size = workers
        return _executor


def reset_executor(wait: bool = True) -> None:
    """Shut down the shared shard pool (if any) and forget it.

    ``repro.nn.training`` calls this when an exception escapes a sharded
    train step: pending shard futures are cancelled and running ones drained
    so no worker thread survives into the recovery retry with stale work.
    """
    global _executor, _executor_size
    with _executor_lock:
        executor, _executor, _executor_size = _executor, None, 0
    if executor is not None:
        executor.shutdown(wait=wait, cancel_futures=True)


def num_threads() -> int:
    """Resolved worker-thread count for batch sharding."""
    return config.num_threads()
