"""Gradient-descent optimizers. The paper uses Adam with lr=1e-3.

Steps are allocation-free on the hot path: moment buffers update in place
through reusable flat scratch arrays, and ``zero_grad`` just drops gradient
references (``param.grad = None``) — fresh gradients are allocated lazily by
the first accumulation of the next backward pass. Every ``step`` bumps the
engine's weight version so weight-derived caches (kernel FFTs, masked
weights) can never serve stale data.

The in-place rewrites preserve the exact floating-point operation order of
the original expressions, so parameter trajectories are bit-identical to the
allocating implementation.

Mixed precision (``REPRO_ENGINE=mixed``): optimizers built while
``config.mixed_precision()`` is active keep float64 *master* copies of every
parameter and run the update arithmetic — moments included — in float64;
the model's float32 weights are refreshed by downcasting the masters after
each step, so rounding error does not compound across updates. The masters
and moments live in the optimizer's state-dict slots, so mixed-mode
checkpoints round-trip bit-exactly. :class:`GradScaler` provides the
matching dynamic loss scaling (power-of-two scales, so scaling and
unscaling are IEEE-exact whenever no overflow occurred).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn import config, engine
from repro.nn.divergence import LOSS_SCALE_FLOOR, NON_FINITE_GRAD_NORM, DivergenceError
from repro.nn.layers.base import Parameter


class Optimizer:
    """Base optimizer holding a parameter list.

    Subclasses expose their complete update state through ``state_dict`` /
    ``load_state_dict`` (moment buffers, step counters, hyperparameters) so
    a training run can be checkpointed and resumed bit-exactly — see
    :mod:`repro.nn.serialization`.
    """

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self._scratch: Dict[str, np.ndarray] = {}
        # Mixed precision: float64 master weights, captured at build time.
        self._master: Optional[List[np.ndarray]] = (
            [p.data.astype(np.float64) for p in self.parameters]
            if config.mixed_precision()
            else None
        )

    def _moment_like(self, param: Parameter) -> np.ndarray:
        """A zeroed state buffer — float64 under mixed precision."""
        if self._master is not None:
            return np.zeros(param.data.shape, dtype=np.float64)
        return np.zeros_like(param.data)

    def _update_target(self, index: int, param: Parameter):
        """(target, grad) for the update arithmetic.

        Plain modes update ``param.data`` with the gradient as-is; mixed
        precision updates the float64 master with an upcast gradient.
        """
        if self._master is None:
            return param.data, param.grad
        master = self._master[index]
        return master, param.grad.astype(master.dtype)

    def _writeback(self, index: int, param: Parameter) -> None:
        """Downcast the updated master into the model's float32 weight."""
        if self._master is not None:
            param.data[...] = self._master[index]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    # ------------------------------------------------------------------
    # Full-state checkpointing.
    # ------------------------------------------------------------------
    def _hyper(self) -> Dict[str, float]:
        """Scalar hyperparameters, for recording and load-time validation."""
        return {}

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        """Per-parameter state buffers, keyed by slot name.

        Subclasses extend the base dict, which carries the mixed-precision
        master weights (when active) so checkpoints round-trip them.
        """
        return {"master": self._master} if self._master is not None else {}

    def state_dict(self) -> Dict:
        """Everything needed to continue stepping exactly where we left off."""
        return {
            "type": type(self).__name__,
            "step_count": int(getattr(self, "_step_count", 0)),
            "hyper": self._hyper(),
            "slots": {name: [b.copy() for b in buffers] for name, buffers in self._slots().items()},
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place (shape-checked)."""
        expected_type = type(self).__name__
        if state.get("type") != expected_type:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, not {expected_type!r}"
            )
        own_slots = self._slots()
        saved_slots = state.get("slots", {})
        if set(saved_slots) != set(own_slots):
            raise ValueError(
                f"optimizer slot mismatch: saved {sorted(saved_slots)}, "
                f"expected {sorted(own_slots)}"
            )
        for name, buffers in own_slots.items():
            saved = saved_slots[name]
            if len(saved) != len(buffers):
                raise ValueError(
                    f"optimizer slot {name!r} has {len(saved)} buffers, "
                    f"expected {len(buffers)}"
                )
            for index, (buffer, value) in enumerate(zip(buffers, saved)):
                value = np.asarray(value)
                if value.shape != buffer.shape:
                    raise ValueError(
                        f"optimizer slot {name}[{index}] shape mismatch: "
                        f"saved {value.shape}, expected {buffer.shape}"
                    )
                np.copyto(buffer, value.astype(buffer.dtype, copy=False))
        if hasattr(self, "_step_count"):
            self._step_count = int(state.get("step_count", 0))

    def _scratch_for(self, param: Parameter, slot: str, dtype=None) -> np.ndarray:
        """A reusable scratch view shaped like ``param`` (one flat buffer per
        dtype and slot, grown to the largest parameter seen). ``dtype``
        overrides the buffer dtype (mixed precision computes in float64
        scratch regardless of the parameter's storage dtype)."""
        dtype = np.dtype(dtype if dtype is not None else param.data.dtype)
        key = f"{slot}:{dtype.str}"
        flat = self._scratch.get(key)
        if flat is None or flat.size < param.data.size:
            size = max(p.data.size for p in self.parameters)
            flat = self._scratch[key] = np.empty(size, dtype=dtype)
        return flat[: param.data.size].reshape(param.data.shape)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [self._moment_like(p) for p in self.parameters]

    def _hyper(self) -> Dict[str, float]:
        return {"lr": self.lr, "momentum": self.momentum, "weight_decay": self.weight_decay}

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        slots = super()._slots()
        slots["velocity"] = self._velocity
        return slots

    def step(self) -> None:
        for index, (param, velocity) in enumerate(zip(self.parameters, self._velocity)):
            if param.grad is None:
                continue
            target, grad = self._update_target(index, param)
            compute_dtype = target.dtype
            if self.weight_decay:
                scaled = self._scratch_for(param, "wd", dtype=compute_dtype)
                np.multiply(target, self.weight_decay, out=scaled)
                scaled += grad
                grad = scaled
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            update = self._scratch_for(param, "update", dtype=compute_dtype)
            np.multiply(grad, self.lr, out=update)
            target -= update
            self._writeback(index, param)
        engine.bump_weight_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the paper's optimizer, defaults matched."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [self._moment_like(p) for p in self.parameters]
        self._v = [self._moment_like(p) for p in self.parameters]

    def _hyper(self) -> Dict[str, float]:
        return {
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "epsilon": self.epsilon,
            "weight_decay": self.weight_decay,
        }

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        slots = super()._slots()
        slots["m"] = self._m
        slots["v"] = self._v
        return slots

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, (param, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if param.grad is None:
                continue
            target, grad = self._update_target(index, param)
            compute_dtype = target.dtype
            if self.weight_decay:
                scaled = self._scratch_for(param, "wd", dtype=compute_dtype)
                np.multiply(target, self.weight_decay, out=scaled)
                scaled += grad
                grad = scaled
            tmp = self._scratch_for(param, "tmp", dtype=compute_dtype)
            # m = beta1*m + (1-beta1)*grad
            np.multiply(grad, 1.0 - self.beta1, out=tmp)
            m *= self.beta1
            m += tmp
            # v = beta2*v + (1-beta2)*grad^2
            np.multiply(grad, grad, out=tmp)
            tmp *= 1.0 - self.beta2
            v *= self.beta2
            v += tmp
            # param -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
            denom = self._scratch_for(param, "denom", dtype=compute_dtype)
            np.divide(v, bias2, out=denom)
            np.sqrt(denom, out=denom)
            denom += self.epsilon
            np.divide(m, bias1, out=tmp)
            tmp *= self.lr
            tmp /= denom
            target -= tmp
            self._writeback(index, param)
        engine.bump_weight_version()


class GradScaler:
    """Dynamic loss scaling for ``REPRO_ENGINE=mixed`` training.

    The loss is multiplied by a power-of-two scale before ``backward`` so
    small float32 gradients survive; gradients are divided by the same
    scale before the optimizer step. Power-of-two scaling is IEEE-exact
    (it only adjusts exponents), so whenever no overflow occurs the
    unscaled gradients are bit-identical to an unscaled backward pass.

    On overflow (any non-finite gradient) the step is *skipped*: gradients
    are dropped, the scale is halved, and training continues — this is the
    normal self-calibration of dynamic scaling, not a divergence, so the
    caller reports the (finite) unscaled loss and the
    ``repro.resilience`` sentinel is never tripped. Only when the scale
    would fall below ``min_scale`` — gradients overflowing even at
    (near-)unit scale — does :meth:`backoff` raise a
    :class:`~repro.nn.divergence.DivergenceError` (``loss_scale_floor``)
    for the recovery policy to handle. After ``growth_interval``
    consecutive good steps the scale doubles again.

    State round-trips through :meth:`state_dict` / :meth:`load_state_dict`
    (the Trainer stores it in its checkpoint's ``extra`` payload).
    """

    def __init__(
        self,
        init_scale: Optional[float] = None,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: Optional[int] = None,
        min_scale: Optional[float] = None,
    ):
        self.scale = float(
            config.loss_scale_init() if init_scale is None else init_scale
        )
        self.growth_factor = float(growth_factor)
        self.backoff_factor = float(backoff_factor)
        self.growth_interval = int(
            config.loss_scale_growth_interval() if growth_interval is None else growth_interval
        )
        self.min_scale = float(config.loss_scale_min() if min_scale is None else min_scale)
        self.good_steps = 0
        self.overflow_steps = 0

    def scale_loss(self, loss):
        """Scaled loss tensor to call ``backward`` on (autograd multiply)."""
        from repro.nn import ops

        return ops.mul(loss, self.scale)

    def found_overflow(self, parameters: Iterable[Parameter]) -> bool:
        """True when any live gradient contains a non-finite value."""
        return any(
            p.grad is not None and not np.all(np.isfinite(p.grad))
            for p in parameters
        )

    def unscale_(self, parameters: Iterable[Parameter]) -> None:
        """Divide live gradients by the scale, in place (IEEE-exact)."""
        inv = 1.0 / self.scale
        for param in parameters:
            if param.grad is not None:
                param.grad *= inv

    def backoff(self, step: Optional[int] = None, epoch: Optional[int] = None) -> None:
        """Record an overflow-skipped step and halve the scale."""
        self.overflow_steps += 1
        self.good_steps = 0
        next_scale = self.scale * self.backoff_factor
        if next_scale < self.min_scale:
            raise DivergenceError(
                LOSS_SCALE_FLOOR,
                f"loss scale {self.scale:g} cannot back off below floor {self.min_scale:g}",
                step=step,
                epoch=epoch,
                value=self.scale,
            )
        self.scale = next_scale

    def update(self) -> None:
        """Record a good step; grow the scale on schedule."""
        self.good_steps += 1
        if self.growth_interval > 0 and self.good_steps >= self.growth_interval:
            self.scale *= self.growth_factor
            self.good_steps = 0

    def state_dict(self) -> Dict[str, float]:
        return {
            "scale": self.scale,
            "good_steps": self.good_steps,
            "overflow_steps": self.overflow_steps,
        }

    def load_state_dict(self, state: Dict[str, float]) -> None:
        self.scale = float(state.get("scale", self.scale))
        self.good_steps = int(state.get("good_steps", 0))
        self.overflow_steps = int(state.get("overflow_steps", 0))


OPTIMIZERS: Dict[str, type] = {"adam": Adam, "sgd": SGD}


def make_optimizer(name: str, parameters: Iterable[Parameter], lr: float = 1e-3, **kwargs) -> Optimizer:
    """Build an optimizer by name — the hook ``RunSpec.optimizer`` resolves through."""
    try:
        cls = OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}") from None
    return cls(parameters, lr=lr, **kwargs)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. A non-finite norm (any NaN/Inf gradient)
    raises :class:`~repro.nn.divergence.DivergenceError` rather than scaling
    the poison into every gradient — NaN / total is NaN, so one bad entry
    would otherwise corrupt all parameters in a single step. An all-zero
    gradient is returned as norm 0.0 without touching anything (no 0/0).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if not np.isfinite(total):
        raise DivergenceError(
            NON_FINITE_GRAD_NORM,
            f"gradient norm is {total} before clipping",
            value=total,
        )
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
