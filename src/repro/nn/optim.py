"""Gradient-descent optimizers. The paper uses Adam with lr=1e-3.

Steps are allocation-free on the hot path: moment buffers update in place
through reusable flat scratch arrays, and ``zero_grad`` just drops gradient
references (``param.grad = None``) — fresh gradients are allocated lazily by
the first accumulation of the next backward pass. Every ``step`` bumps the
engine's weight version so weight-derived caches (kernel FFTs, masked
weights) can never serve stale data.

The in-place rewrites preserve the exact floating-point operation order of
the original expressions, so parameter trajectories are bit-identical to the
allocating implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn import engine
from repro.nn.divergence import NON_FINITE_GRAD_NORM, DivergenceError
from repro.nn.layers.base import Parameter


class Optimizer:
    """Base optimizer holding a parameter list.

    Subclasses expose their complete update state through ``state_dict`` /
    ``load_state_dict`` (moment buffers, step counters, hyperparameters) so
    a training run can be checkpointed and resumed bit-exactly — see
    :mod:`repro.nn.serialization`.
    """

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self._scratch: Dict[str, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    # ------------------------------------------------------------------
    # Full-state checkpointing.
    # ------------------------------------------------------------------
    def _hyper(self) -> Dict[str, float]:
        """Scalar hyperparameters, for recording and load-time validation."""
        return {}

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        """Per-parameter state buffers, keyed by slot name."""
        return {}

    def state_dict(self) -> Dict:
        """Everything needed to continue stepping exactly where we left off."""
        return {
            "type": type(self).__name__,
            "step_count": int(getattr(self, "_step_count", 0)),
            "hyper": self._hyper(),
            "slots": {name: [b.copy() for b in buffers] for name, buffers in self._slots().items()},
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place (shape-checked)."""
        expected_type = type(self).__name__
        if state.get("type") != expected_type:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, not {expected_type!r}"
            )
        own_slots = self._slots()
        saved_slots = state.get("slots", {})
        if set(saved_slots) != set(own_slots):
            raise ValueError(
                f"optimizer slot mismatch: saved {sorted(saved_slots)}, "
                f"expected {sorted(own_slots)}"
            )
        for name, buffers in own_slots.items():
            saved = saved_slots[name]
            if len(saved) != len(buffers):
                raise ValueError(
                    f"optimizer slot {name!r} has {len(saved)} buffers, "
                    f"expected {len(buffers)}"
                )
            for index, (buffer, value) in enumerate(zip(buffers, saved)):
                value = np.asarray(value)
                if value.shape != buffer.shape:
                    raise ValueError(
                        f"optimizer slot {name}[{index}] shape mismatch: "
                        f"saved {value.shape}, expected {buffer.shape}"
                    )
                np.copyto(buffer, value.astype(buffer.dtype, copy=False))
        if hasattr(self, "_step_count"):
            self._step_count = int(state.get("step_count", 0))

    def _scratch_for(self, param: Parameter, slot: str) -> np.ndarray:
        """A reusable scratch view shaped like ``param`` (one flat buffer per
        dtype and slot, grown to the largest parameter seen)."""
        key = f"{slot}:{np.dtype(param.data.dtype).str}"
        flat = self._scratch.get(key)
        if flat is None or flat.size < param.data.size:
            size = max(
                p.data.size
                for p in self.parameters
                if np.dtype(p.data.dtype) == np.dtype(param.data.dtype)
            )
            flat = self._scratch[key] = np.empty(size, dtype=param.data.dtype)
        return flat[: param.data.size].reshape(param.data.shape)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _hyper(self) -> Dict[str, float]:
        return {"lr": self.lr, "momentum": self.momentum, "weight_decay": self.weight_decay}

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                scaled = self._scratch_for(param, "wd")
                np.multiply(param.data, self.weight_decay, out=scaled)
                scaled += grad
                grad = scaled
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            update = self._scratch_for(param, "update")
            np.multiply(grad, self.lr, out=update)
            param.data -= update
        engine.bump_weight_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the paper's optimizer, defaults matched."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _hyper(self) -> Dict[str, float]:
        return {
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "epsilon": self.epsilon,
            "weight_decay": self.weight_decay,
        }

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                scaled = self._scratch_for(param, "wd")
                np.multiply(param.data, self.weight_decay, out=scaled)
                scaled += grad
                grad = scaled
            tmp = self._scratch_for(param, "tmp")
            # m = beta1*m + (1-beta1)*grad
            np.multiply(grad, 1.0 - self.beta1, out=tmp)
            m *= self.beta1
            m += tmp
            # v = beta2*v + (1-beta2)*grad^2
            np.multiply(grad, grad, out=tmp)
            tmp *= 1.0 - self.beta2
            v *= self.beta2
            v += tmp
            # param -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
            denom = self._scratch_for(param, "denom")
            np.divide(v, bias2, out=denom)
            np.sqrt(denom, out=denom)
            denom += self.epsilon
            np.divide(m, bias1, out=tmp)
            tmp *= self.lr
            tmp /= denom
            param.data -= tmp
        engine.bump_weight_version()


OPTIMIZERS: Dict[str, type] = {"adam": Adam, "sgd": SGD}


def make_optimizer(name: str, parameters: Iterable[Parameter], lr: float = 1e-3, **kwargs) -> Optimizer:
    """Build an optimizer by name — the hook ``RunSpec.optimizer`` resolves through."""
    try:
        cls = OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}") from None
    return cls(parameters, lr=lr, **kwargs)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. A non-finite norm (any NaN/Inf gradient)
    raises :class:`~repro.nn.divergence.DivergenceError` rather than scaling
    the poison into every gradient — NaN / total is NaN, so one bad entry
    would otherwise corrupt all parameters in a single step. An all-zero
    gradient is returned as norm 0.0 without touching anything (no 0/0).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if not np.isfinite(total):
        raise DivergenceError(
            NON_FINITE_GRAD_NORM,
            f"gradient norm is {total} before clipping",
            value=total,
        )
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
