"""Loss functions. The paper trains BikeCAP with L1 loss (Sec. IV-C)."""

from __future__ import annotations

from repro.nn import ops
from repro.nn.tensor import Tensor, as_tensor


def l1_loss(prediction, target) -> Tensor:
    """Mean absolute error — the paper's training loss."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    return ops.mean(ops.abs(ops.sub(prediction, target)))


def mse_loss(prediction, target) -> Tensor:
    """Mean squared error (the decoder objective described in Sec. III-E)."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = ops.sub(prediction, target)
    return ops.mean(ops.mul(diff, diff))


def huber_loss(prediction, target, delta: float = 1.0) -> Tensor:
    """Huber loss — quadratic near zero, linear in the tails."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = ops.sub(prediction, target)
    abs_diff = ops.abs(diff)
    quadratic = ops.mul(0.5, ops.mul(diff, diff))
    linear = ops.sub(ops.mul(delta, abs_diff), 0.5 * delta**2)
    mask = abs_diff.data <= delta
    return ops.mean(ops.where(mask, quadratic, linear))


LOSSES = {"l1": l1_loss, "mse": mse_loss, "huber": huber_loss}


def get_loss(name: str):
    """Look up a loss function by name."""
    try:
        return LOSSES[name]
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(LOSSES)}") from None
