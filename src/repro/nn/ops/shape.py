"""Shape-manipulation primitives with autograd support."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor, as_tensor, make_op


def reshape(a, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    data = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return make_op(data, (a,), backward)


def transpose(a, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    a = as_tensor(a)
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    data = a.data.transpose(axes)
    inverse = np.argsort(axes)

    def backward(grad):
        return (grad.transpose(inverse),)

    return make_op(data, (a,), backward)


def moveaxis(a, source: int, destination: int) -> Tensor:
    a = as_tensor(a)
    data = np.moveaxis(a.data, source, destination)

    def backward(grad):
        return (np.moveaxis(grad, destination, source),)

    return make_op(data, (a,), backward)


def expand_dims(a, axis: int) -> Tensor:
    a = as_tensor(a)
    data = np.expand_dims(a.data, axis)

    def backward(grad):
        return (np.squeeze(grad, axis=axis),)

    return make_op(data, (a,), backward)


def squeeze(a, axis: int) -> Tensor:
    a = as_tensor(a)
    data = np.squeeze(a.data, axis=axis)

    def backward(grad):
        return (np.expand_dims(grad, axis),)

    return make_op(data, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, boundaries, axis=axis))

    return make_op(data, tuple(tensors), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return make_op(data, tuple(tensors), backward)


def pad(a, pad_width, value: float = 0.0) -> Tensor:
    """Constant-pad; ``pad_width`` follows ``np.pad`` conventions."""
    a = as_tensor(a)
    data = np.pad(a.data, pad_width, mode="constant", constant_values=value)
    norm_width = np.asarray(
        np.broadcast_to(np.asarray(pad_width, dtype=int), (a.ndim, 2))
        if np.asarray(pad_width).ndim <= 1
        else pad_width,
        dtype=int,
    )
    slices = tuple(
        slice(before, before + dim)
        for (before, _after), dim in zip(norm_width, a.shape)
    )

    def backward(grad):
        return (grad[slices],)

    return make_op(data, (a,), backward)


def getitem(a, index) -> Tensor:
    """Differentiable basic/advanced indexing (scatter-add on backward)."""
    a = as_tensor(a)
    data = a.data[index]

    def backward(grad):
        out = np.zeros_like(a.data)
        np.add.at(out, index, grad)
        return (out,)

    return make_op(data, (a,), backward)


def flip(a, axis) -> Tensor:
    a = as_tensor(a)
    data = np.flip(a.data, axis=axis)

    def backward(grad):
        return (np.flip(grad, axis=axis),)

    return make_op(data, (a,), backward)


def tile(a, reps) -> Tensor:
    a = as_tensor(a)
    data = np.tile(a.data, reps)
    reps_full = np.atleast_1d(np.asarray(reps, dtype=int))
    ndim = max(a.ndim, len(reps_full))
    reps_full = np.concatenate([np.ones(ndim - len(reps_full), dtype=int), reps_full])
    orig = np.concatenate([np.ones(ndim - a.ndim, dtype=int), np.asarray(a.shape, dtype=int)])

    def backward(grad):
        # View grad as (rep_0, orig_0, rep_1, orig_1, ...) and sum the
        # repetition axes, folding every tile back onto the source.
        interleaved = []
        for rep, dim in zip(reps_full, orig):
            interleaved.extend((int(rep), int(dim)))
        g = grad.reshape(interleaved).sum(axis=tuple(range(0, 2 * ndim, 2)))
        return (g.reshape(a.shape),)

    return make_op(data, (a,), backward)
