"""Activation functions with autograd support."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor, make_op


def relu(a) -> Tensor:
    a = as_tensor(a)
    data = np.maximum(a.data, 0.0)

    def backward(grad):
        return (grad * (a.data > 0),)

    return make_op(data, (a,), backward)


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    data = np.where(a.data > 0, a.data, negative_slope * a.data)

    def backward(grad):
        return (grad * np.where(a.data > 0, 1.0, negative_slope),)

    return make_op(data, (a,), backward)


def elu(a, alpha: float = 1.0) -> Tensor:
    a = as_tensor(a)
    exp_part = alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0)
    data = np.where(a.data > 0, a.data, exp_part)

    def backward(grad):
        return (grad * np.where(a.data > 0, 1.0, exp_part + alpha),)

    return make_op(data, (a,), backward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    # Numerically stable piecewise logistic.
    x = a.data
    data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))

    def backward(grad):
        return (grad * data * (1.0 - data),)

    return make_op(data, (a,), backward)


def tanh(a) -> Tensor:
    a = as_tensor(a)
    data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - data**2),)

    return make_op(data, (a,), backward)


def softmax(a, axis=-1) -> Tensor:
    """Softmax along one or several axes (jointly normalized)."""
    a = as_tensor(a)
    axes = axis if isinstance(axis, tuple) else (axis,)
    shifted = a.data - a.data.max(axis=axes, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axes, keepdims=True)

    def backward(grad):
        inner = (grad * data).sum(axis=axes, keepdims=True)
        return (data * (grad - inner),)

    return make_op(data, (a,), backward)


def log_softmax(a, axis=-1) -> Tensor:
    a = as_tensor(a)
    axes = axis if isinstance(axis, tuple) else (axis,)
    shifted = a.data - a.data.max(axis=axes, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axes, keepdims=True))
    data = shifted - log_norm
    soft = np.exp(data)

    def backward(grad):
        return (grad - soft * grad.sum(axis=axes, keepdims=True),)

    return make_op(data, (a,), backward)
