"""Reduction primitives (sum/mean/max/min) with autograd support."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor, make_op


def _normalize_axes(axis, ndim):
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_for_broadcast(grad, axes, out_keepdims, in_shape):
    """Re-insert reduced axes as singletons so grad broadcasts to input shape."""
    if out_keepdims:
        return grad
    shape = list(in_shape)
    for axis in axes:
        shape[axis] = 1
    return grad.reshape(shape)


def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    axes = _normalize_axes(axis, a.ndim)
    data = a.data.sum(axis=axes, keepdims=keepdims)

    def backward(grad):
        grad = _expand_for_broadcast(grad, axes, keepdims, a.shape)
        return (np.broadcast_to(grad, a.shape),)

    return make_op(data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    axes = _normalize_axes(axis, a.ndim)
    count = 1
    for ax in axes:
        count *= a.shape[ax]
    data = a.data.mean(axis=axes, keepdims=keepdims)

    def backward(grad):
        grad = _expand_for_broadcast(grad, axes, keepdims, a.shape)
        return (np.broadcast_to(grad, a.shape) / count,)

    return make_op(data, (a,), backward)


def _extremum(a, axis, keepdims, np_fn):
    a = as_tensor(a)
    axes = _normalize_axes(axis, a.ndim)
    data = np_fn(a.data, axis=axes, keepdims=keepdims)

    def backward(grad):
        grad = _expand_for_broadcast(grad, axes, keepdims, a.shape)
        extremum = _expand_for_broadcast(
            np.asarray(data), axes, keepdims, a.shape
        )
        mask = a.data == extremum
        # Split gradient evenly across ties so gradcheck stays symmetric.
        counts = mask.sum(axis=axes, keepdims=True)
        return (grad * mask / counts,)

    return make_op(data, (a,), backward)


def max(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _extremum(a, axis, keepdims, np.max)


def min(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _extremum(a, axis, keepdims, np.min)


def norm(a, axis=None, keepdims: bool = False, epsilon: float = 0.0) -> Tensor:
    """Euclidean norm along ``axis``.

    ``epsilon`` is added under the square root for a numerically safe
    gradient at zero vectors (needed by the capsule squash function).
    """
    from repro.nn.ops import basic

    squared = basic.mul(a, a)
    total = sum(squared, axis=axis, keepdims=keepdims)
    if epsilon:
        total = basic.add(total, epsilon)
    return basic.sqrt(total)
