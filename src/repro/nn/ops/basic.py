"""Elementwise and linear-algebra primitives with autograd support.

All binary ops are broadcast-aware: gradients are summed back down to each
operand's shape via :func:`repro.nn.tensor.unbroadcast`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import engine
from repro.nn.tensor import Tensor, as_tensor, make_op, unbroadcast


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data + b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return make_op(data, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data - b.data

    def backward(grad):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return make_op(data, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data * b.data

    def backward(grad):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return make_op(data, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data / b.data

    def backward(grad):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return make_op(data, (a, b), backward)


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        return (-grad,)

    return make_op(-a.data, (a,), backward)


def power(a, exponent: float) -> Tensor:
    """Raise to a (constant) scalar power."""
    a = as_tensor(a)
    exponent = float(exponent)
    data = a.data**exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return make_op(data, (a,), backward)


def exp(a) -> Tensor:
    a = as_tensor(a)
    data = np.exp(a.data)

    def backward(grad):
        return (grad * data,)

    return make_op(data, (a,), backward)


def log(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        return (grad / a.data,)

    return make_op(np.log(a.data), (a,), backward)


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    data = np.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / data,)

    return make_op(data, (a,), backward)


def abs(a) -> Tensor:  # noqa: A001 - mirrors numpy naming
    a = as_tensor(a)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return make_op(np.abs(a.data), (a,), backward)


def clip(a, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    a = as_tensor(a)
    data = np.clip(a.data, low, high)

    def backward(grad):
        mask = (a.data >= low) & (a.data <= high)
        return (grad * mask,)

    return make_op(data, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; ties send the gradient to the first operand."""
    a, b = as_tensor(a), as_tensor(b)
    data = np.maximum(a.data, b.data)

    def backward(grad):
        take_a = a.data >= b.data
        return (
            unbroadcast(grad * take_a, a.shape),
            unbroadcast(grad * ~take_a, b.shape),
        )

    return make_op(data, (a, b), backward)


def matmul(a, b) -> Tensor:
    """Matrix product supporting 1-D, 2-D and batched operands.

    1-D operands are handled with numpy's ``@`` semantics: a 1-D left operand
    acts as a row vector, a 1-D right operand as a column vector, and the
    corresponding singleton axis is dropped from the result.
    """
    a, b = as_tensor(a), as_tensor(b)
    data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            return grad * b_data, grad * a_data
        a2 = a_data[None, :] if a_data.ndim == 1 else a_data
        b2 = b_data[:, None] if b_data.ndim == 1 else b_data
        g2 = grad
        if a_data.ndim == 1:
            g2 = np.expand_dims(g2, axis=-2)
        if b_data.ndim == 1:
            g2 = np.expand_dims(g2, axis=-1)
        ga = g2 @ np.swapaxes(b2, -1, -2)
        gb = np.swapaxes(a2, -1, -2) @ g2
        if a_data.ndim == 1:
            # ga has shape (..., 1, n): drop the row axis, sum any batch axes.
            ga = ga[..., 0, :].reshape(-1, a_data.shape[0]).sum(axis=0)
        else:
            ga = unbroadcast(ga, a_data.shape)
        if b_data.ndim == 1:
            # gb has shape (..., n, 1): drop the column axis, sum batch axes.
            gb = gb[..., 0].reshape(-1, b_data.shape[0]).sum(axis=0)
        else:
            gb = unbroadcast(gb, b_data.shape)
        return ga, gb

    return make_op(data, (a, b), backward)


def einsum(subscripts: str, a, b) -> Tensor:
    """Two-operand einsum with autograd, using the engine's cached paths.

    Restrictions (asserted): explicit ``->`` output, no repeated label
    within a single operand, and every input label must appear in the output
    or in the other operand (so each backward pass is itself one einsum —
    the standard adjoint rewrite).
    """
    a, b = as_tensor(a), as_tensor(b)
    if "->" not in subscripts:
        raise ValueError("einsum op requires an explicit '->' output")
    inputs, out_labels = subscripts.split("->")
    a_labels, b_labels = inputs.split(",")
    for labels in (a_labels, b_labels):
        if len(set(labels)) != len(labels):
            raise ValueError(f"repeated label within one operand: {labels!r}")
    for labels, other in ((a_labels, b_labels), (b_labels, a_labels)):
        missing = set(labels) - set(out_labels) - set(other)
        if missing:
            raise ValueError(
                f"labels {sorted(missing)} appear in one operand only; "
                "their adjoint is not a single einsum"
            )
    data = engine.einsum(subscripts, a.data, b.data)

    def backward(grad):
        ga = gb = None
        if a.requires_grad:
            ga = engine.einsum(f"{out_labels},{b_labels}->{a_labels}", grad, b.data)
        if b.requires_grad:
            gb = engine.einsum(f"{out_labels},{a_labels}->{b_labels}", grad, a.data)
        return ga, gb

    return make_op(data, (a, b), backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Select elementwise from ``a`` where condition else ``b``.

    ``condition`` is a plain boolean array (not differentiable).
    """
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad):
        return (
            unbroadcast(grad * cond, a.shape),
            unbroadcast(grad * ~cond, b.shape),
        )

    return make_op(data, (a, b), backward)
