"""Convolution primitives: conv2d/conv3d and their transposes.

Implementation strategy
-----------------------
The forward pass extracts sliding windows with
``np.lib.stride_tricks.sliding_window_view`` (views, no copy) and contracts
them against the kernel. The input gradient is computed *exactly* as the
adjoint: zero-stuff the output gradient by the stride, full-pad, and
convolve with the spatially-flipped, channel-swapped kernel. Transposed
convolution is literally the adjoint operator, so its forward reuses the
input-gradient kernel and its backward reuses the forward convolution — one
fully-vectorized code path, verified by finite differences.

Execution plans
---------------
Each kernel call is dispatched by :mod:`repro.nn.engine` to one of three
exact strategies, chosen per shape/dtype signature and cached:

- ``einsum`` — contract the sliding-window view directly; fastest for
  small contractions and for float32 generally.
- ``gemm`` — materialize the im2col copy once and hand BLAS a single
  matrix product; wins for float64 above ~1.5M im2col elements on the
  forward, and for the weight gradient (a tall-skinny reduction) at every
  calibrated size.
- ``fft`` — frequency-domain convolution via ``scipy.fft``; cost scales
  with the *input* volume only, so it wins for big kernels or very large
  im2col footprints. Kernel FFTs are cached across calls while the weights
  are unchanged, and the padded-input FFT computed on the forward pass is
  reused by the weight gradient of the same op.

Dispatch thresholds live in :mod:`repro.nn.config`
(``REPRO_CONV_FFT_MIN_KERNEL_VOLUME``, ``REPRO_CONV_FFT_MIN_IM2COL_ELEMENTS``,
``REPRO_CONV_GEMM_MIN_ELEMENTS``); calibration numbers are tabulated in
docs/PERFORMANCE.md. Large transients (padded inputs, stride-stuffed
gradients, im2col columns) come from the engine's workspace arena instead
of fresh allocations.

Data layout is channels-first: ``(N, C, D, H, W)`` for 3-D and
``(N, C, H, W)`` for 2-D. 3-D kernels are ``(C_out, C_in, kD, kH, kW)``;
transposed kernels are ``(C_in, C_out, kD, kH, kW)``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import config, engine
from repro.nn.tensor import Tensor, as_tensor, make_op

PadSpec = Union[int, Sequence[int], Sequence[Tuple[int, int]]]
_Pads = Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]


def normalize_stride(stride, dims: int) -> Tuple[int, ...]:
    if isinstance(stride, int):
        return (stride,) * dims
    stride = tuple(int(s) for s in stride)
    if len(stride) != dims:
        raise ValueError(f"stride must have {dims} entries, got {stride}")
    return stride


def normalize_pads(padding: PadSpec, dims: int) -> Tuple[Tuple[int, int], ...]:
    """Normalize padding to per-axis (before, after) pairs.

    Accepts an int (same everywhere), a sequence of ints (symmetric per
    axis), or a sequence of (before, after) pairs (asymmetric — used for the
    causal temporal padding of the pyramid convolution).
    """
    if isinstance(padding, int):
        return ((padding, padding),) * dims
    padding = list(padding)
    if len(padding) != dims:
        raise ValueError(f"padding must have {dims} entries, got {padding}")
    pairs = []
    for item in padding:
        if isinstance(item, int):
            pairs.append((item, item))
        else:
            before, after = item
            pairs.append((int(before), int(after)))
    return tuple(pairs)


def same_padding(kernel_size: Sequence[int]) -> Tuple[int, ...]:
    """Symmetric 'same' padding for odd kernels at stride 1."""
    pads = []
    for k in kernel_size:
        if k % 2 == 0:
            raise ValueError(f"'same' padding requires odd kernel sizes, got {k}")
        pads.append((k - 1) // 2)
    return tuple(pads)


def conv_output_size(size: int, kernel: int, stride: int, before: int, after: int) -> int:
    span = size + before + after - kernel
    if span < 0:
        raise ValueError(
            f"kernel {kernel} larger than padded input {size + before + after}"
        )
    return span // stride + 1


# ---------------------------------------------------------------------------
# Low-level numpy kernels (no autograd)
# ---------------------------------------------------------------------------

def _pad5(x: np.ndarray, pads: _Pads) -> Tuple[np.ndarray, bool]:
    """Pad into an arena buffer; returns ``(padded, borrowed)``."""
    if all(p == (0, 0) for p in pads):
        return x, False
    shape = x.shape[:2] + tuple(
        x.shape[2 + i] + pads[i][0] + pads[i][1] for i in range(3)
    )
    buffer = engine.arena_zeros(shape, x.dtype)
    interior = (slice(None), slice(None)) + tuple(
        slice(pads[i][0], pads[i][0] + x.shape[2 + i]) for i in range(3)
    )
    buffer[interior] = x
    return buffer, True


def _prefer_fft(batch: int, channels: int, out_spatial, kernel) -> bool:
    """Legacy predicate: does this signature take the frequency-domain path?"""
    kernel_volume = int(np.prod(kernel))
    if kernel_volume >= config.conv_fft_min_kernel_volume():
        return True
    im2col_elements = batch * channels * int(np.prod(out_spatial)) * kernel_volume
    return im2col_elements >= config.conv_fft_min_im2col_elements()


def _view_identity(arr: np.ndarray) -> Tuple:
    """Cache key for a (possibly viewed) kernel: root object + view layout.

    Kernels arrive as flip/transpose *views* rebuilt on every call, so the
    view object's own identity is useless as a key; the root buffer plus the
    view's memory layout pins down exactly which values the view reads.
    """
    root = arr
    while isinstance(root.base, np.ndarray):
        root = root.base
    return root, (
        arr.shape,
        arr.strides,
        arr.__array_interface__["data"][0],
        np.dtype(arr.dtype).str,
    )


def _kernel_rfftn(w: np.ndarray, spatial: Tuple[int, ...], flip: bool) -> np.ndarray:
    """(Cached) FFT of a conv kernel zero-extended to the padded-input size."""
    from scipy import fft as sfft

    root, layout = _view_identity(w)

    def build() -> np.ndarray:
        kernel = w[:, :, ::-1, ::-1, ::-1] if flip else w
        return sfft.rfftn(kernel, s=spatial, axes=(2, 3, 4), workers=-1)

    return engine.kernel_fft(root, (tuple(spatial), flip) + layout, build)


def _conv3d_forward_fft(
    xp: np.ndarray, w: np.ndarray, stride, capture: Optional[dict] = None
) -> np.ndarray:
    """Valid 3-D cross-correlation of a padded input via FFT."""
    from scipy import fft as sfft

    spatial = xp.shape[2:]
    kernel = w.shape[2:]
    fx = sfft.rfftn(xp, s=spatial, axes=(2, 3, 4), workers=-1)
    if capture is not None:
        capture["fx"] = fx
        capture["fx_spatial"] = spatial
    fw = _kernel_rfftn(w, spatial, flip=True)
    product = engine.einsum("ncdhw,ocdhw->nodhw", fx, fw)
    full = sfft.irfftn(product, s=spatial, axes=(2, 3, 4), workers=-1)
    # The valid-correlation region of a circular convolution with
    # S = padded-input size starts at kernel−1 (wraparound only pollutes
    # indices below that).
    out = full[:, :, kernel[0] - 1 :, kernel[1] - 1 :, kernel[2] - 1 :]
    return np.ascontiguousarray(out[:, :, :: stride[0], :: stride[1], :: stride[2]])


def _stuff_stride(gout: np.ndarray, stride) -> Tuple[np.ndarray, bool]:
    """Zero-stuff ``gout`` back onto the stride-1 lattice (no-op at stride 1)."""
    if stride == (1, 1, 1):
        return gout, False
    stuffed_shape = tuple((gout.shape[2 + i] - 1) * stride[i] + 1 for i in range(3))
    stuffed = engine.arena_zeros(gout.shape[:2] + stuffed_shape, gout.dtype)
    stuffed[:, :, :: stride[0], :: stride[1], :: stride[2]] = gout
    return stuffed, True


def _conv3d_weight_grad_fft(
    xp_spatial: Tuple[int, ...],
    gout: np.ndarray,
    kernel_size,
    stride,
    xp: Optional[np.ndarray] = None,
    fx: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Kernel gradient via the cross-correlation theorem.

    With the output gradient zero-stuffed back onto the stride-1 lattice,
    ``gw[o,c,l] = Σ_{n,t} xp[n,c,t+l] · g[n,o,t]`` for lags ``l < kernel`` —
    no wraparound because the stuffed output's support plus the maximum lag
    stays inside the padded input extent.

    ``fx`` (if given) is the forward pass's ``rfftn`` of the same padded
    input, reused instead of transforming ``xp`` again.
    """
    from scipy import fft as sfft

    spatial = tuple(xp_spatial)
    gout, stuffed_borrowed = _stuff_stride(gout, tuple(stride))
    if fx is None:
        fx = sfft.rfftn(xp, s=spatial, axes=(2, 3, 4), workers=-1)
    fg = sfft.rfftn(gout, s=spatial, axes=(2, 3, 4), workers=-1)
    if stuffed_borrowed:
        engine.arena_release(gout)
    corr = sfft.irfftn(
        engine.einsum("ncdhw,nodhw->ocdhw", fx, np.conj(fg)),
        s=spatial,
        axes=(2, 3, 4),
    )
    kd, kh, kw = kernel_size
    return np.ascontiguousarray(corr[:, :, :kd, :kh, :kw])


def _im2col(
    xp: np.ndarray, kernel: Tuple[int, ...], stride, out_spatial
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize the (N·positions, C·kernel) column matrix for BLAS.

    Returns ``(columns, buffer)`` — ``columns`` is a 2-D view of ``buffer``,
    which the caller must release back to the arena (unless it escapes).
    """
    windows = sliding_window_view(xp, kernel, axis=(2, 3, 4))
    windows = windows[:, :, :: stride[0], :: stride[1], :: stride[2]]
    batch, channels = xp.shape[0], xp.shape[1]
    positions = int(np.prod(out_spatial))
    kernel_volume = int(np.prod(kernel))
    buffer = engine.arena_empty(
        (batch,) + tuple(out_spatial) + (channels,) + tuple(kernel), xp.dtype
    )
    np.copyto(buffer, windows.transpose(0, 2, 3, 4, 1, 5, 6, 7))
    return buffer.reshape(batch * positions, channels * kernel_volume), buffer


def _conv3d_forward_gemm(
    xp: np.ndarray, w: np.ndarray, stride, out_spatial, capture: Optional[dict] = None
) -> np.ndarray:
    batch, c_out = xp.shape[0], w.shape[0]
    cols, buffer = _im2col(xp, w.shape[2:], stride, out_spatial)
    flat = cols @ np.ascontiguousarray(w.reshape(c_out, -1).T)
    if capture is not None:
        # The weight gradient contracts the identical column matrix against
        # the output gradient; hand it over instead of rebuilding it. The
        # buffer now escapes the call, so it must NOT go back to the arena.
        capture["cols"] = cols
    else:
        engine.arena_release(buffer)
    out = flat.reshape((batch,) + tuple(out_spatial) + (c_out,))
    return np.ascontiguousarray(out.transpose(0, 4, 1, 2, 3))


def _conv3d_weight_grad_gemm(
    xp: np.ndarray,
    gout: np.ndarray,
    kernel_size,
    stride,
    cols: Optional[np.ndarray] = None,
) -> np.ndarray:
    c_out = gout.shape[1]
    c_in = xp.shape[1]
    buffer = None
    if cols is None:
        cols, buffer = _im2col(xp, tuple(kernel_size), stride, gout.shape[2:])
    gm = gout.transpose(1, 0, 2, 3, 4).reshape(c_out, -1)
    grad = gm @ cols
    if buffer is not None:
        engine.arena_release(buffer)
    return grad.reshape((c_out, c_in) + tuple(kernel_size))


def conv3d_forward(
    x: np.ndarray, w: np.ndarray, stride, pads: _Pads, _capture: Optional[dict] = None
) -> np.ndarray:
    """Plain 3-D cross-correlation. x:(N,C,D,H,W), w:(O,C,kd,kh,kw)."""
    stride = tuple(stride)
    out_spatial = tuple(
        (x.shape[2 + i] + pads[i][0] + pads[i][1] - w.shape[2 + i]) // stride[i] + 1
        for i in range(3)
    )
    plan = engine.conv_forward_plan(
        x.shape[0], x.shape[1], out_spatial, w.shape[2:], x.dtype
    )
    xp, borrowed = _pad5(x, pads)
    if plan == engine.PLAN_FFT:
        out = _conv3d_forward_fft(xp, w, stride, capture=_capture)
    elif plan == engine.PLAN_GEMM:
        out = _conv3d_forward_gemm(xp, w, stride, out_spatial, capture=_capture)
    else:
        windows = sliding_window_view(xp, w.shape[2:], axis=(2, 3, 4))
        windows = windows[:, :, :: stride[0], :: stride[1], :: stride[2]]
        out = engine.einsum("ncdhwijk,ocijk->nodhw", windows, w)
    if borrowed:
        engine.arena_release(xp)
    return out


def conv3d_weight_grad(
    x: np.ndarray,
    gout: np.ndarray,
    kernel_size,
    stride,
    pads: _Pads,
    _captured: Optional[dict] = None,
) -> np.ndarray:
    """Gradient of conv3d w.r.t. the kernel.

    ``_captured`` (optional) carries forward-pass intermediates for the same
    op — the padded-input FFT (``fx``) or the im2col columns (``cols``) —
    which this contraction reuses instead of recomputing.
    """
    stride = tuple(stride)
    kernel_size = tuple(kernel_size)
    plan = engine.conv_weight_grad_plan(
        x.shape[0], x.shape[1], gout.shape[2:], kernel_size, x.dtype
    )
    captured = _captured or {}
    padded_spatial = tuple(
        x.shape[2 + i] + pads[i][0] + pads[i][1] for i in range(3)
    )
    if plan == engine.PLAN_FFT:
        fx = captured.get("fx")
        if fx is not None and captured.get("fx_spatial") == padded_spatial:
            return _conv3d_weight_grad_fft(
                padded_spatial, gout, kernel_size, stride, fx=fx
            )
        xp, borrowed = _pad5(x, pads)
        grad = _conv3d_weight_grad_fft(padded_spatial, gout, kernel_size, stride, xp=xp)
        if borrowed:
            engine.arena_release(xp)
        return grad
    cols = captured.get("cols")
    if cols is not None:
        return _conv3d_weight_grad_gemm(x, gout, kernel_size, stride, cols=cols)
    xp, borrowed = _pad5(x, pads)
    grad = _conv3d_weight_grad_gemm(xp, gout, kernel_size, stride)
    if borrowed:
        engine.arena_release(xp)
    return grad


def conv3d_input_grad(
    gout: np.ndarray, w: np.ndarray, x_spatial, stride, pads: _Pads
) -> np.ndarray:
    """Gradient of conv3d w.r.t. its input (the adjoint convolution).

    ``x_spatial`` is the (D, H, W) of the *unpadded* input whose gradient is
    required; this also serves as the forward pass of transposed convolution.
    """
    stride = tuple(stride)
    kernel = w.shape[2:]
    out_spatial = gout.shape[2:]

    padded = [x_spatial[i] + pads[i][0] + pads[i][1] for i in range(3)]
    stuffed, stuffed_borrowed = _stuff_stride(gout, stride)

    full_pads = []
    for i in range(3):
        remainder = padded[i] - ((out_spatial[i] - 1) * stride[i] + kernel[i])
        if remainder < 0:
            raise ValueError("inconsistent shapes for conv3d_input_grad")
        full_pads.append((kernel[i] - 1, kernel[i] - 1 + remainder))

    flipped = np.flip(w, axis=(2, 3, 4)).transpose(1, 0, 2, 3, 4)  # (C_in, C_out, k)
    grad_padded = conv3d_forward(stuffed, flipped, (1, 1, 1), tuple(full_pads))
    if stuffed_borrowed:
        engine.arena_release(stuffed)
    slices = tuple(
        slice(pads[i][0], pads[i][0] + x_spatial[i]) for i in range(3)
    )
    return grad_padded[:, :, slices[0], slices[1], slices[2]]


# ---------------------------------------------------------------------------
# Autograd ops
# ---------------------------------------------------------------------------

def conv3d(
    x,
    w,
    b=None,
    stride=1,
    padding: PadSpec = 0,
    weight_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """3-D convolution. ``weight_mask`` (if given) is a fixed binary mask
    multiplied into the kernel — this is how the pyramid kernel gates its
    weights while keeping a dense convolution code path."""
    x, w = as_tensor(x), as_tensor(w)
    b = as_tensor(b) if b is not None else None
    stride3 = normalize_stride(stride, 3)
    pads = normalize_pads(padding, 3)
    w_eff = engine.masked_weight(w.data, weight_mask) if weight_mask is not None else w.data
    capture: Optional[dict] = (
        {} if config.grad_enabled() and w.requires_grad else None
    )
    data = conv3d_forward(x.data, w_eff, stride3, pads, _capture=capture)
    if b is not None:
        data = data + b.data[None, :, None, None, None]

    x_spatial = x.shape[2:]
    kernel = w.shape[2:]

    def backward(grad):
        gx = gw = gb = None
        if x.requires_grad:
            gx = conv3d_input_grad(grad, w_eff, x_spatial, stride3, pads)
        if w.requires_grad:
            gw = conv3d_weight_grad(
                x.data, grad, kernel, stride3, pads, _captured=capture
            )
            if weight_mask is not None:
                gw = gw * weight_mask
        if b is not None and b.requires_grad:
            gb = grad.sum(axis=(0, 2, 3, 4))
        grads = [gx, gw]
        if b is not None:
            grads.append(gb)
        return tuple(grads)

    parents = (x, w) if b is None else (x, w, b)
    return make_op(data, parents, backward)


def conv_transpose3d(
    x,
    w,
    b=None,
    stride=1,
    padding: PadSpec = 0,
    output_padding=0,
) -> Tensor:
    """3-D transposed convolution (the exact adjoint of :func:`conv3d`).

    ``w`` has shape ``(C_in, C_out, kD, kH, kW)``. Output spatial size is
    ``(D - 1) * stride - pad_before - pad_after + kernel + output_padding``.
    """
    x, w = as_tensor(x), as_tensor(w)
    b = as_tensor(b) if b is not None else None
    stride3 = normalize_stride(stride, 3)
    pads = normalize_pads(padding, 3)
    opads = normalize_stride(output_padding, 3)
    out_spatial = tuple(
        (x.shape[2 + i] - 1) * stride3[i]
        - pads[i][0]
        - pads[i][1]
        + w.shape[2 + i]
        + opads[i]
        for i in range(3)
    )
    for i, size in enumerate(out_spatial):
        if size <= 0:
            raise ValueError(f"non-positive transposed-conv output size {size} on axis {i}")

    # The transpose's forward is the input-gradient of a conv whose weight is
    # w viewed as (O=C_in, C=C_out, k...) and whose input has out_spatial.
    data = conv3d_input_grad(x.data, w.data, out_spatial, stride3, pads)
    if b is not None:
        data = data + b.data[None, :, None, None, None]

    kernel = w.shape[2:]

    def backward(grad):
        gx = gw = gb = None
        if x.requires_grad:
            gx = conv3d_forward(grad, w.data, stride3, pads)
        if w.requires_grad:
            gw = conv3d_weight_grad(grad, x.data, kernel, stride3, pads)
        if b is not None and b.requires_grad:
            gb = grad.sum(axis=(0, 2, 3, 4))
        grads = [gx, gw]
        if b is not None:
            grads.append(gb)
        return tuple(grads)

    parents = (x, w) if b is None else (x, w, b)
    return make_op(data, parents, backward)


def conv2d(x, w, b=None, stride=1, padding: PadSpec = 0) -> Tensor:
    """2-D convolution on the 3-D kernels with a unit depth axis.

    A single autograd node: the depth axis is added/removed on the raw
    arrays rather than through ``expand_dims``/``squeeze`` ops, so each conv
    layer costs one graph node per step instead of three.
    """
    x, w = as_tensor(x), as_tensor(w)
    b = as_tensor(b) if b is not None else None
    stride3 = (1,) + normalize_stride(stride, 2)
    pads3 = ((0, 0),) + normalize_pads(padding, 2)
    x5 = x.data[:, :, None]  # (N, C, 1, H, W) view
    w5 = w.data[:, :, None]  # (O, C, 1, kH, kW) view
    capture: Optional[dict] = (
        {} if config.grad_enabled() and w.requires_grad else None
    )
    data5 = conv3d_forward(x5, w5, stride3, pads3, _capture=capture)
    data = data5[:, :, 0]
    if b is not None:
        data = data + b.data[None, :, None, None]

    x_spatial = x5.shape[2:]
    kernel = w5.shape[2:]

    def backward(grad):
        grad5 = grad[:, :, None]
        gx = gw = gb = None
        if x.requires_grad:
            gx = conv3d_input_grad(grad5, w5, x_spatial, stride3, pads3)[:, :, 0]
        if w.requires_grad:
            gw = conv3d_weight_grad(
                x5, grad5, kernel, stride3, pads3, _captured=capture
            )[:, :, 0]
        if b is not None and b.requires_grad:
            gb = grad.sum(axis=(0, 2, 3))
        grads = [gx, gw]
        if b is not None:
            grads.append(gb)
        return tuple(grads)

    parents = (x, w) if b is None else (x, w, b)
    return make_op(data, parents, backward)
