"""Convolution primitives: conv2d/conv3d and their transposes.

Implementation strategy
-----------------------
The forward pass extracts sliding windows with
``np.lib.stride_tricks.sliding_window_view`` (views, no copy) and contracts
them against the kernel with a single ``einsum``. The input gradient is
computed *exactly* as the adjoint: zero-stuff the output gradient by the
stride, full-pad, and convolve with the spatially-flipped, channel-swapped
kernel. Transposed convolution is literally the adjoint operator, so its
forward reuses the input-gradient kernel and its backward reuses the forward
convolution — one fully-vectorized code path, verified by finite differences.

Data layout is channels-first: ``(N, C, D, H, W)`` for 3-D and
``(N, C, H, W)`` for 2-D. 3-D kernels are ``(C_out, C_in, kD, kH, kW)``;
transposed kernels are ``(C_in, C_out, kD, kH, kW)``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.tensor import Tensor, as_tensor, make_op

PadSpec = Union[int, Sequence[int], Sequence[Tuple[int, int]]]
_Pads = Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]


def normalize_stride(stride, dims: int) -> Tuple[int, ...]:
    if isinstance(stride, int):
        return (stride,) * dims
    stride = tuple(int(s) for s in stride)
    if len(stride) != dims:
        raise ValueError(f"stride must have {dims} entries, got {stride}")
    return stride


def normalize_pads(padding: PadSpec, dims: int) -> Tuple[Tuple[int, int], ...]:
    """Normalize padding to per-axis (before, after) pairs.

    Accepts an int (same everywhere), a sequence of ints (symmetric per
    axis), or a sequence of (before, after) pairs (asymmetric — used for the
    causal temporal padding of the pyramid convolution).
    """
    if isinstance(padding, int):
        return ((padding, padding),) * dims
    padding = list(padding)
    if len(padding) != dims:
        raise ValueError(f"padding must have {dims} entries, got {padding}")
    pairs = []
    for item in padding:
        if isinstance(item, int):
            pairs.append((item, item))
        else:
            before, after = item
            pairs.append((int(before), int(after)))
    return tuple(pairs)


def same_padding(kernel_size: Sequence[int]) -> Tuple[int, ...]:
    """Symmetric 'same' padding for odd kernels at stride 1."""
    pads = []
    for k in kernel_size:
        if k % 2 == 0:
            raise ValueError(f"'same' padding requires odd kernel sizes, got {k}")
        pads.append((k - 1) // 2)
    return tuple(pads)


def conv_output_size(size: int, kernel: int, stride: int, before: int, after: int) -> int:
    span = size + before + after - kernel
    if span < 0:
        raise ValueError(
            f"kernel {kernel} larger than padded input {size + before + after}"
        )
    return span // stride + 1


# ---------------------------------------------------------------------------
# Low-level numpy kernels (no autograd)
# ---------------------------------------------------------------------------

def _pad5(x: np.ndarray, pads: _Pads) -> np.ndarray:
    if all(p == (0, 0) for p in pads):
        return x
    return np.pad(x, ((0, 0), (0, 0)) + tuple(pads))


# im2col materializes an (N, C, D_out, H_out, W_out, kd*kh*kw) copy; when
# that copy gets large (big pyramid kernels, or the routing conv's many
# depth positions) the FFT path — whose cost scales with the *input* volume
# only — wins. Both paths are exact (cross-validated and gradchecked).
FFT_MIN_KERNEL_VOLUME = 48
FFT_MIN_IM2COL_ELEMENTS = 4_000_000


def _prefer_fft(batch: int, channels: int, out_spatial, kernel) -> bool:
    kernel_volume = int(np.prod(kernel))
    if kernel_volume >= FFT_MIN_KERNEL_VOLUME:
        return True
    im2col_elements = batch * channels * int(np.prod(out_spatial)) * kernel_volume
    return im2col_elements >= FFT_MIN_IM2COL_ELEMENTS


def _conv3d_forward_fft(xp: np.ndarray, w: np.ndarray, stride) -> np.ndarray:
    """Valid 3-D cross-correlation of a padded input via FFT."""
    from scipy import fft as sfft

    spatial = xp.shape[2:]
    kernel = w.shape[2:]
    fx = sfft.rfftn(xp, s=spatial, axes=(2, 3, 4), workers=-1)
    fw = sfft.rfftn(w[:, :, ::-1, ::-1, ::-1], s=spatial, axes=(2, 3, 4), workers=-1)
    product = np.einsum("ncdhw,ocdhw->nodhw", fx, fw, optimize=True)
    full = sfft.irfftn(product, s=spatial, axes=(2, 3, 4), workers=-1)
    # The valid-correlation region of a circular convolution with
    # S = padded-input size starts at kernel−1 (wraparound only pollutes
    # indices below that).
    out = full[:, :, kernel[0] - 1 :, kernel[1] - 1 :, kernel[2] - 1 :]
    return np.ascontiguousarray(out[:, :, :: stride[0], :: stride[1], :: stride[2]])


def _conv3d_weight_grad_fft(
    xp: np.ndarray, gout: np.ndarray, kernel_size, stride
) -> np.ndarray:
    """Kernel gradient via the cross-correlation theorem.

    With the output gradient zero-stuffed back onto the stride-1 lattice,
    ``gw[o,c,l] = Σ_{n,t} xp[n,c,t+l] · g[n,o,t]`` for lags ``l < kernel`` —
    no wraparound because the stuffed output's support plus the maximum lag
    stays inside the padded input extent.
    """
    from scipy import fft as sfft

    spatial = xp.shape[2:]
    if stride != (1, 1, 1):
        stuffed_shape = tuple(
            (gout.shape[2 + i] - 1) * stride[i] + 1 for i in range(3)
        )
        stuffed = np.zeros(gout.shape[:2] + stuffed_shape, dtype=gout.dtype)
        stuffed[:, :, :: stride[0], :: stride[1], :: stride[2]] = gout
        gout = stuffed
    fx = sfft.rfftn(xp, s=spatial, axes=(2, 3, 4), workers=-1)
    fg = sfft.rfftn(gout, s=spatial, axes=(2, 3, 4), workers=-1)
    corr = sfft.irfftn(
        np.einsum("ncdhw,nodhw->ocdhw", fx, np.conj(fg), optimize=True),
        s=spatial,
        axes=(2, 3, 4),
    )
    kd, kh, kw = kernel_size
    return np.ascontiguousarray(corr[:, :, :kd, :kh, :kw])


def conv3d_forward(x: np.ndarray, w: np.ndarray, stride, pads: _Pads) -> np.ndarray:
    """Plain 3-D cross-correlation. x:(N,C,D,H,W), w:(O,C,kd,kh,kw)."""
    xp = _pad5(x, pads)
    stride = tuple(stride)
    out_spatial = tuple(
        (xp.shape[2 + i] - w.shape[2 + i]) // stride[i] + 1 for i in range(3)
    )
    if _prefer_fft(x.shape[0], x.shape[1], out_spatial, w.shape[2:]):
        return _conv3d_forward_fft(xp, w, stride)
    windows = sliding_window_view(xp, w.shape[2:], axis=(2, 3, 4))
    windows = windows[:, :, :: stride[0], :: stride[1], :: stride[2]]
    return np.einsum("ncdhwijk,ocijk->nodhw", windows, w, optimize=True)


def conv3d_weight_grad(
    x: np.ndarray, gout: np.ndarray, kernel_size, stride, pads: _Pads
) -> np.ndarray:
    """Gradient of conv3d w.r.t. the kernel."""
    xp = _pad5(x, pads)
    stride = tuple(stride)
    if _prefer_fft(x.shape[0], x.shape[1], gout.shape[2:], kernel_size):
        return _conv3d_weight_grad_fft(xp, gout, tuple(kernel_size), stride)
    windows = sliding_window_view(xp, tuple(kernel_size), axis=(2, 3, 4))
    windows = windows[:, :, :: stride[0], :: stride[1], :: stride[2]]
    return np.einsum("ncdhwijk,nodhw->ocijk", windows, gout, optimize=True)


def conv3d_input_grad(
    gout: np.ndarray, w: np.ndarray, x_spatial, stride, pads: _Pads
) -> np.ndarray:
    """Gradient of conv3d w.r.t. its input (the adjoint convolution).

    ``x_spatial`` is the (D, H, W) of the *unpadded* input whose gradient is
    required; this also serves as the forward pass of transposed convolution.
    """
    n = gout.shape[0]
    c_out, c_in = w.shape[0], w.shape[1]
    kernel = w.shape[2:]
    out_spatial = gout.shape[2:]

    padded = [x_spatial[i] + pads[i][0] + pads[i][1] for i in range(3)]
    stuffed_shape = [(out_spatial[i] - 1) * stride[i] + 1 for i in range(3)]
    stuffed = np.zeros((n, c_out, *stuffed_shape), dtype=gout.dtype)
    stuffed[:, :, :: stride[0], :: stride[1], :: stride[2]] = gout

    full_pads = []
    for i in range(3):
        remainder = padded[i] - ((out_spatial[i] - 1) * stride[i] + kernel[i])
        if remainder < 0:
            raise ValueError("inconsistent shapes for conv3d_input_grad")
        full_pads.append((kernel[i] - 1, kernel[i] - 1 + remainder))

    flipped = np.flip(w, axis=(2, 3, 4)).transpose(1, 0, 2, 3, 4)  # (C_in, C_out, k)
    grad_padded = conv3d_forward(stuffed, flipped, (1, 1, 1), tuple(full_pads))
    slices = tuple(
        slice(pads[i][0], pads[i][0] + x_spatial[i]) for i in range(3)
    )
    return grad_padded[:, :, slices[0], slices[1], slices[2]]


# ---------------------------------------------------------------------------
# Autograd ops
# ---------------------------------------------------------------------------

def conv3d(
    x,
    w,
    b=None,
    stride=1,
    padding: PadSpec = 0,
    weight_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """3-D convolution. ``weight_mask`` (if given) is a fixed binary mask
    multiplied into the kernel — this is how the pyramid kernel gates its
    weights while keeping a dense convolution code path."""
    x, w = as_tensor(x), as_tensor(w)
    b = as_tensor(b) if b is not None else None
    stride3 = normalize_stride(stride, 3)
    pads = normalize_pads(padding, 3)
    w_eff = w.data * weight_mask if weight_mask is not None else w.data
    data = conv3d_forward(x.data, w_eff, stride3, pads)
    if b is not None:
        data = data + b.data[None, :, None, None, None]

    x_spatial = x.shape[2:]
    kernel = w.shape[2:]

    def backward(grad):
        gx = gw = gb = None
        if x.requires_grad:
            gx = conv3d_input_grad(grad, w_eff, x_spatial, stride3, pads)
        if w.requires_grad:
            gw = conv3d_weight_grad(x.data, grad, kernel, stride3, pads)
            if weight_mask is not None:
                gw = gw * weight_mask
        if b is not None and b.requires_grad:
            gb = grad.sum(axis=(0, 2, 3, 4))
        grads = [gx, gw]
        if b is not None:
            grads.append(gb)
        return tuple(grads)

    parents = (x, w) if b is None else (x, w, b)
    return make_op(data, parents, backward)


def conv_transpose3d(
    x,
    w,
    b=None,
    stride=1,
    padding: PadSpec = 0,
    output_padding=0,
) -> Tensor:
    """3-D transposed convolution (the exact adjoint of :func:`conv3d`).

    ``w`` has shape ``(C_in, C_out, kD, kH, kW)``. Output spatial size is
    ``(D - 1) * stride - pad_before - pad_after + kernel + output_padding``.
    """
    x, w = as_tensor(x), as_tensor(w)
    b = as_tensor(b) if b is not None else None
    stride3 = normalize_stride(stride, 3)
    pads = normalize_pads(padding, 3)
    opads = normalize_stride(output_padding, 3)
    out_spatial = tuple(
        (x.shape[2 + i] - 1) * stride3[i]
        - pads[i][0]
        - pads[i][1]
        + w.shape[2 + i]
        + opads[i]
        for i in range(3)
    )
    for i, size in enumerate(out_spatial):
        if size <= 0:
            raise ValueError(f"non-positive transposed-conv output size {size} on axis {i}")

    # The transpose's forward is the input-gradient of a conv whose weight is
    # w viewed as (O=C_in, C=C_out, k...) and whose input has out_spatial.
    data = conv3d_input_grad(x.data, w.data, out_spatial, stride3, pads)
    if b is not None:
        data = data + b.data[None, :, None, None, None]

    kernel = w.shape[2:]

    def backward(grad):
        gx = gw = gb = None
        if x.requires_grad:
            gx = conv3d_forward(grad, w.data, stride3, pads)
        if w.requires_grad:
            gw = conv3d_weight_grad(grad, x.data, kernel, stride3, pads)
        if b is not None and b.requires_grad:
            gb = grad.sum(axis=(0, 2, 3, 4))
        grads = [gx, gw]
        if b is not None:
            grads.append(gb)
        return tuple(grads)

    parents = (x, w) if b is None else (x, w, b)
    return make_op(data, parents, backward)


def conv2d(x, w, b=None, stride=1, padding: PadSpec = 0) -> Tensor:
    """2-D convolution, implemented on the 3-D path with a unit depth axis."""
    x, w = as_tensor(x), as_tensor(w)
    from repro.nn.ops import shape as shape_ops

    stride2 = normalize_stride(stride, 2)
    pads2 = normalize_pads(padding, 2)
    x5 = shape_ops.expand_dims(x, 2)  # (N, C, 1, H, W)
    w5 = shape_ops.expand_dims(w, 2)  # (O, C, 1, kH, kW)
    out5 = conv3d(
        x5,
        w5,
        b,
        stride=(1,) + stride2,
        padding=((0, 0),) + pads2,
    )
    return shape_ops.squeeze(out5, 2)
