"""Render a JSONL run log as text: ``python -m repro.obs.report run.jsonl``.

Prints, per run log:

- a header (run id, seed, recorded config),
- the epoch curve (train/val loss and seconds per epoch),
- eval / early-stop events,
- the "top ops by self time" table when the log's ``run_end`` event carries
  a profiler trace (see :class:`repro.obs.observers.JsonlObserver`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.obs.runlog import read_events


def format_rows(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align ``rows`` under ``headers`` with a dashed separator."""
    table = [list(headers)] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(table[0], widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in table[1:]:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def epoch_table(events: List[Dict]) -> Optional[str]:
    epochs = [event for event in events if event.get("event") == "epoch"]
    if not epochs:
        return None
    rows = [
        [
            _fmt(event.get("epoch")),
            _fmt(event.get("train_loss")),
            _fmt(event.get("val_loss")),
            _fmt(event.get("seconds"), 2),
            _fmt(event.get("ts"), 2),
        ]
        for event in epochs
    ]
    return format_rows(["epoch", "train_loss", "val_loss", "seconds", "ts"], rows)


def ops_table(events: List[Dict], limit: int = 15) -> Optional[str]:
    trace = None
    for event in events:
        if event.get("event") == "run_end" and event.get("trace"):
            trace = event["trace"]
    if not trace:
        return None
    total_self = sum(row.get("self_s", 0.0) for row in trace) or 1.0
    rows = [
        [
            row["name"],
            _fmt(row.get("count")),
            _fmt(row.get("total_s"), 4),
            _fmt(row.get("self_s"), 4),
            f"{100.0 * row.get('self_s', 0.0) / total_self:.1f}%",
        ]
        for row in sorted(trace, key=lambda r: r.get("self_s", 0.0), reverse=True)[:limit]
    ]
    return format_rows(["op", "calls", "total_s", "self_s", "self%"], rows)


def event_counts(events: List[Dict]) -> Dict[str, int]:
    """How many of each event type the log carries (lifecycle excluded)."""
    counts: Dict[str, int] = {}
    for event in events:
        name = event.get("event")
        if name in (None, "run_start", "run_end"):
            continue
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def summarize_run(events: List[Dict]) -> Dict:
    """A machine-readable digest of one run log (``--format json``)."""
    start = next((e for e in events if e.get("event") == "run_start"), None)
    end = next((e for e in events if e.get("event") == "run_end"), None)
    epochs = [event for event in events if event.get("event") == "epoch"]
    # Engine plan-cache statistics (entries per cache, hit/miss traffic,
    # arena bytes) are logged once at run close by the pipeline runner;
    # surface the newest record minus the event envelope.
    plan_cache = next(
        (e for e in reversed(events) if e.get("event") == "plan_cache"), None
    )
    if plan_cache is not None:
        plan_cache = {
            key: value
            for key, value in plan_cache.items()
            if key not in ("event", "ts")
        }
    return {
        "run_id": (start or {}).get("run_id"),
        "seed": (start or {}).get("seed"),
        "config": (start or {}).get("config"),
        "status": (end or {}).get("status"),
        "duration_seconds": (end or {}).get("ts"),
        "events": event_counts(events),
        "plan_cache": plan_cache,
        "epochs": [
            {
                "epoch": event.get("epoch"),
                "train_loss": event.get("train_loss"),
                "val_loss": event.get("val_loss"),
                "seconds": event.get("seconds"),
            }
            for event in epochs
        ],
        "alerts": [
            event
            for event in events
            if event.get("event") in ("drift_detected", "slo_burn", "early_stop")
        ],
    }


def render_run(events: List[Dict], limit: int = 15) -> str:
    """The full text report for one run log."""
    sections = []
    start = next((e for e in events if e.get("event") == "run_start"), None)
    if start is not None:
        header = [f"run {start.get('run_id')}"]
        if start.get("seed") is not None:
            header.append(f"seed={start['seed']}")
        sections.append("  ".join(header))
        if start.get("config"):
            sections.append("config: " + json.dumps(start["config"], default=str))
    epochs = epoch_table(events)
    if epochs is not None:
        sections.append("== epochs ==\n" + epochs)
    else:
        # Serve/bench-style logs have no training loop; show what they DO
        # carry instead of an empty table.
        counts = event_counts(events)
        listing = (
            "\n".join(f"{name}  x{count}" for name, count in counts.items())
            if counts
            else "(no events)"
        )
        sections.append("== events (no epoch events) ==\n" + listing)
    for event in events:
        if event.get("event") in ("drift_detected", "slo_burn"):
            fields = {k: v for k, v in event.items() if k not in ("event", "ts")}
            sections.append(f"{event['event']}: " + json.dumps(fields, default=str))
    extras = [
        event
        for event in events
        if event.get("event") in ("eval", "early_stop") and "epoch" not in event
    ]
    for event in extras:
        fields = {k: v for k, v in event.items() if k not in ("event", "ts")}
        sections.append(f"{event['event']}: " + json.dumps(fields, default=str))
    stops = [event for event in events if event.get("event") == "early_stop"]
    for event in stops:
        if event in extras:
            continue
        sections.append(
            f"early_stop at epoch {event.get('epoch')}: "
            f"best val {_fmt(event.get('best_val_loss'))} @ epoch {event.get('best_epoch')}"
        )
    ops = ops_table(events, limit=limit)
    sections.append(
        "== top ops by self time ==\n"
        + (ops or "(no op trace recorded — fit with JsonlObserver(profile=True))")
    )
    end = next((e for e in events if e.get("event") == "run_end"), None)
    if end is not None:
        sections.append(
            f"run_end status={end.get('status')} after {_fmt(end.get('ts'), 2)}s"
        )
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__
    )
    parser.add_argument("paths", nargs="+", help="JSONL run log file(s)")
    parser.add_argument("--top", type=int, default=15, help="op-table row limit")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json emits one digest document per log (see summarize_run)",
    )
    args = parser.parse_args(argv)
    status = 0
    digests = []
    for index, path in enumerate(args.paths):
        try:
            events = read_events(path)
        except OSError as error:
            print(f"error: cannot read {path}: {error.strerror or error}", file=sys.stderr)
            status = 1
            continue
        except json.JSONDecodeError as error:
            print(f"error: {path} is not a JSONL run log ({error})", file=sys.stderr)
            status = 1
            continue
        if args.format == "json":
            digests.append({"path": path, **summarize_run(events)})
        else:
            if index:
                print("\n" + "=" * 72 + "\n")
            print(render_run(events, limit=args.top))
    if args.format == "json":
        print(json.dumps(digests if len(args.paths) > 1 else digests[0] if digests else {}, default=str, indent=2))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
