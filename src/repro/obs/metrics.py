"""Zero-dependency metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` holds named instruments, optionally labelled
(``registry.counter("routing_forward_total", model="BikeCAP")``). The
process-global default registry (:func:`get_registry`) is what the
instrumented library code writes to; :meth:`MetricsRegistry.snapshot`
freezes everything into plain dicts for JSON serialization, and
:meth:`MetricsRegistry.reset` clears it between runs.

Label hygiene: label *names* must be identifiers and label *values* are
backslash-escaped inside the flattened instrument key, so values containing
``,``, ``=``, ``{`` or ``}`` cannot collide with each other or with other
label sets. Instruments remember their structured ``base_name``/``labels``
too, which is what the Prometheus renderer in
:mod:`repro.obs.serve_metrics` consumes.

Histograms are **bounded**: beyond ``max_observations`` (default 8192) they
switch to uniform reservoir sampling — count/sum/min/max stay exact,
percentiles become estimates over the reservoir — so an always-on serving
process cannot grow memory without limit.

Everything here is stdlib-only so the instrumentation layer can be imported
from anywhere in the stack (including ``repro.nn``) without cycles.
"""

from __future__ import annotations

import random
import re
import threading
import zlib
from typing import Dict, List

# Beyond this many observations a histogram keeps a uniform sample instead
# of every value (Algorithm R), bounding always-on serving memory.
DEFAULT_HISTOGRAM_CAP = 8192

_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Characters that would make a flattened `name{a=b,c=d}` key ambiguous.
_ESCAPES = {"\\": "\\\\", ",": "\\,", "=": "\\=", "{": "\\{", "}": "\\}", "\n": "\\n"}


def escape_label_value(value: object) -> str:
    """Backslash-escape a label value for the flattened metric key."""
    text = str(value)
    if not any(ch in text for ch in _ESCAPES):
        return text
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def _metric_key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    for key in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(
                f"invalid label name {key!r} for metric {name!r}: "
                "label names must be identifiers ([a-zA-Z_][a-zA-Z0-9_]*)"
            )
    inner = ",".join(f"{key}={escape_label_value(labels[key])}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self.base_name = name
        self.labels: Dict[str, str] = {}
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += amount


class Gauge:
    """A value that can move in both directions."""

    def __init__(self, name: str):
        self.name = name
        self.base_name = name
        self.labels: Dict[str, str] = {}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)


class Histogram:
    """An observed-value distribution with bounded memory.

    Below ``max_observations`` every value is retained and percentiles are
    exact linear-interpolation quantiles. Beyond the cap the retained
    values become a uniform reservoir sample (Algorithm R, deterministic
    per-instrument seed) — ``count``/``sum``/``min``/``max`` stay exact,
    percentiles become estimates over the reservoir.
    """

    def __init__(self, name: str, max_observations: int = DEFAULT_HISTOGRAM_CAP):
        if max_observations < 1:
            raise ValueError(f"max_observations must be >= 1, got {max_observations}")
        self.name = name
        self.base_name = name
        self.labels: Dict[str, str] = {}
        self.max_observations = int(max_observations)
        self.values: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        # Deterministic per-name seed so sampled percentiles reproduce
        # across runs (hash() is salted per process; crc32 is not).
        self._rng = random.Random(zlib.crc32(name.encode()))

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self.values) < self.max_observations:
            self.values.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.max_observations:
                self.values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def sampled(self) -> bool:
        """True once the reservoir has dropped observations."""
        return self._count > self.max_observations

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100].

        Exact below the reservoir cap; an estimate over the uniform sample
        beyond it (with exact 0/100 endpoints preserved).
        """
        if not self.values:
            return float("nan")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.sampled:
            if q == 0.0:
                return self._min
            if q == 100.0:
                return self._max
        ordered = sorted(self.values)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0}
        summary = {
            "count": self.count,
            "sum": self.sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
        if self.sampled:
            summary["sampled"] = True
        return summary


class MetricsRegistry:
    """Named, optionally labelled instruments with snapshot/reset."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, store: Dict, cls, name: str, labels: Dict[str, object]):
        key = _metric_key(name, labels)
        with self._lock:
            instrument = store.get(key)
            if instrument is None:
                instrument = store[key] = cls(key)
                instrument.base_name = name
                instrument.labels = {k: str(v) for k, v in sorted(labels.items())}
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def snapshot(self) -> Dict[str, Dict]:
        """Freeze every instrument into JSON-friendly plain dicts."""
        with self._lock:
            return {
                "counters": {key: c.value for key, c in self._counters.items()},
                "gauges": {key: g.value for key, g in self._gauges.items()},
                "histograms": {key: h.summary() for key, h in self._histograms.items()},
            }

    def export_rows(self) -> List[Dict]:
        """Structured rows for wire renderers (kind, name, labels, data).

        Unlike :meth:`snapshot` (keyed by the flattened string), each row
        carries the instrument's base name and label dict, so a Prometheus
        or JSON renderer never has to re-parse escaped keys.
        """
        with self._lock:
            rows: List[Dict] = []
            for counter in self._counters.values():
                rows.append(
                    {
                        "kind": "counter",
                        "name": counter.base_name,
                        "labels": dict(counter.labels),
                        "value": counter.value,
                    }
                )
            for gauge in self._gauges.values():
                rows.append(
                    {
                        "kind": "gauge",
                        "name": gauge.base_name,
                        "labels": dict(gauge.labels),
                        "value": gauge.value,
                    }
                )
            for histogram in self._histograms.values():
                rows.append(
                    {
                        "kind": "histogram",
                        "name": histogram.base_name,
                        "labels": dict(histogram.labels),
                        "summary": histogram.summary(),
                        "quantiles": {
                            q: histogram.percentile(q * 100.0)
                            for q in (0.5, 0.9, 0.99)
                        }
                        if histogram.count
                        else {},
                    }
                )
        return rows

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry library instrumentation writes to."""
    return _DEFAULT


def counter(name: str, **labels) -> Counter:
    return _DEFAULT.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _DEFAULT.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return _DEFAULT.histogram(name, **labels)


def snapshot() -> Dict[str, Dict]:
    return _DEFAULT.snapshot()


def reset() -> None:
    _DEFAULT.reset()
