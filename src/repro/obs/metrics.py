"""Zero-dependency metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` holds named instruments, optionally labelled
(``registry.counter("routing_forward_total", model="BikeCAP")``). The
process-global default registry (:func:`get_registry`) is what the
instrumented library code writes to; :meth:`MetricsRegistry.snapshot`
freezes everything into plain dicts for JSON serialization, and
:meth:`MetricsRegistry.reset` clears it between runs.

Everything here is stdlib-only so the instrumentation layer can be imported
from anywhere in the stack (including ``repro.nn``) without cycles.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple


def _metric_key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += amount


class Gauge:
    """A value that can move in both directions."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)


class Histogram:
    """An observed-value distribution with exact percentile math.

    Observations are retained (this is an in-process debugging tool, not a
    telemetry wire format), so percentiles are exact linear-interpolation
    quantiles over everything observed since the last reset.
    """

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100]."""
        if not self.values:
            return float("nan")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.values)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.sum / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named, optionally labelled instruments with snapshot/reset."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, store: Dict, cls, name: str, labels: Dict[str, object]):
        key = _metric_key(name, labels)
        with self._lock:
            instrument = store.get(key)
            if instrument is None:
                instrument = store[key] = cls(key)
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def snapshot(self) -> Dict[str, Dict]:
        """Freeze every instrument into JSON-friendly plain dicts."""
        with self._lock:
            return {
                "counters": {key: c.value for key, c in self._counters.items()},
                "gauges": {key: g.value for key, g in self._gauges.items()},
                "histograms": {key: h.summary() for key, h in self._histograms.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry library instrumentation writes to."""
    return _DEFAULT


def counter(name: str, **labels) -> Counter:
    return _DEFAULT.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _DEFAULT.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return _DEFAULT.histogram(name, **labels)


def snapshot() -> Dict[str, Dict]:
    return _DEFAULT.snapshot()


def reset() -> None:
    _DEFAULT.reset()
