"""Training observers: the callback surface ``Trainer.fit`` notifies.

Replaces the old ``verbose`` print with composable sinks:

- :class:`ConsoleObserver` — the familiar one-line-per-epoch progress.
- :class:`MetricsObserver` — epoch counters/gauges/histograms into a
  metrics registry.
- :class:`JsonlObserver` — a full structured run log (``run_start`` /
  ``epoch`` / ``eval`` / ``early_stop`` / ``run_end``) to a JSONL file,
  optionally with op-level profiling enabled for the duration of the fit so
  the ``run_end`` event carries a "top ops by self time" trace.

Observers receive plain-dict payloads so custom observers only need to
subclass :class:`TrainingObserver` and override what they care about.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import profiler, tracing
from repro.obs.runlog import RunLogger


class TrainingObserver:
    """No-op base class; override the hooks you need."""

    def on_fit_start(self, info: Dict) -> None:
        pass

    def on_step(self, info: Dict) -> None:
        """Per optimizer step — ``{"step", "epoch", "loss"}``.

        Fires once per mini-batch, so overrides must stay cheap; the
        default observers ignore it. ``repro.resilience.DivergenceSentinel``
        uses it for loss finiteness and spike detection.
        """

    def on_epoch(self, info: Dict) -> None:
        pass

    def on_eval(self, info: Dict) -> None:
        pass

    def on_early_stop(self, info: Dict) -> None:
        pass

    def on_fit_end(self, info: Dict) -> None:
        pass


class ConsoleObserver(TrainingObserver):
    """Per-epoch progress lines, matching the old ``verbose=True`` format."""

    def __init__(self, stream=None, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.stream = stream
        self.every = every

    def _print(self, message: str) -> None:
        stream = self.stream or sys.stdout
        print(message, file=stream, flush=True)

    def on_epoch(self, info: Dict) -> None:
        epoch = info["epoch"]
        if epoch % self.every and epoch != info["epochs"]:
            return
        val_part = f" val={info['val_loss']:.4f}" if info.get("val_loss") is not None else ""
        self._print(
            f"epoch {epoch}/{info['epochs']} "
            f"loss={info['train_loss']:.4f}{val_part} "
            f"({info['seconds']:.1f}s)"
        )

    def on_early_stop(self, info: Dict) -> None:
        self._print(
            f"early stop at epoch {info['epoch']} "
            f"(best val={info['best_val_loss']:.4f} @ epoch {info['best_epoch']})"
        )


class MetricsObserver(TrainingObserver):
    """Mirror training progress into a metrics registry."""

    def __init__(self, registry: Optional[obs_metrics.MetricsRegistry] = None):
        self.registry = registry or obs_metrics.get_registry()

    def on_fit_start(self, info: Dict) -> None:
        self.registry.counter("train_runs_total").inc()

    def on_epoch(self, info: Dict) -> None:
        self.registry.counter("train_epochs_total").inc()
        self.registry.gauge("train_last_loss").set(info["train_loss"])
        self.registry.histogram("train_epoch_seconds").observe(info["seconds"])

    def on_eval(self, info: Dict) -> None:
        self.registry.gauge("train_last_val_loss").set(info["val_loss"])

    def on_early_stop(self, info: Dict) -> None:
        self.registry.counter("train_early_stops_total").inc()

    def on_fit_end(self, info: Dict) -> None:
        self.registry.gauge("train_total_seconds").set(info["total_seconds"])


class JsonlObserver(TrainingObserver):
    """Write the whole fit as a structured JSONL run log.

    While the log is open it is registered as an active run logger, so
    events emitted deep inside the stack (``routing_iter``, ``epoch``,
    ``eval``…) land in the file without any explicit plumbing. With
    ``profile=True`` (the default) op-level profiling is enabled for the
    duration of the fit and the ``run_end`` event carries the aggregated
    trace.
    """

    def __init__(self, path: str, profile: bool = True, run_id: Optional[str] = None):
        self.path = path
        self.profile = profile
        self.run_id = run_id
        self.logger: Optional[RunLogger] = None
        self._tracer: Optional[tracing.Tracer] = None
        self._was_profiling = False

    def on_fit_start(self, info: Dict) -> None:
        self.logger = RunLogger(
            self.path, run_id=self.run_id, seed=info.get("seed"), config=info
        ).open()
        if self.profile:
            self._was_profiling = profiler.op_profiling_enabled()
            if not self._was_profiling:
                self._tracer = tracing.Tracer()
                profiler.enable_op_profiling(self._tracer)

    def on_fit_end(self, info: Dict) -> None:
        trace = None
        if self._tracer is not None:
            profiler.disable_op_profiling()
            trace = self._tracer.snapshot()
            self._tracer = None
        if self.logger is not None:
            summary = dict(info)
            if trace:
                summary["trace"] = trace
            self.logger.close(status="ok", **summary)
            self.logger = None
