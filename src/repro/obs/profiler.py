"""Op- and module-level profilers for the ``repro.nn`` substrate.

Two opt-in hooks, both restoring the original code on exit so that the
disabled state carries **zero** overhead (nothing is patched, no flag is
checked on the hot path):

- :func:`profile_ops` — wraps every autograd op in the ``repro.nn.ops``
  namespace with a ``op.<name>`` span, and wraps the produced tensor's
  backward closure with ``op.<name>.backward``, giving forward *and*
  backward self-time per op.
- :func:`profile_modules` — wraps ``Module.__call__`` with a
  ``module.<ClassName>`` span, giving per-layer forward timing for whole
  models (nested: self time excludes child modules).

:func:`top_ops` turns a tracer snapshot into the "top ops by self time"
rows the report CLI renders.

``repro.nn`` is imported lazily inside the enable functions so this module
stays importable from anywhere without cycles.
"""

from __future__ import annotations

import contextlib
import functools
from typing import Dict, List, Optional

from repro.obs import tracing

# Shape/padding helpers re-exported by repro.nn.ops that are not autograd
# ops; timing them would only add noise.
_NON_OPS = {
    "conv_output_size",
    "normalize_pads",
    "normalize_stride",
    "same_padding",
}

_op_patches: List = []  # [(module, name, original), ...] while enabled
_module_patch: Optional[tuple] = None


def _timed_op(name: str, fn, tracer: tracing.Tracer):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with tracer.span(f"op.{name}"):
            out = fn(*args, **kwargs)
        backward = getattr(out, "_backward", None)
        if backward is not None:

            def timed_backward(grad):
                with tracer.span(f"op.{name}.backward"):
                    return backward(grad)

            out._backward = timed_backward
        return out

    wrapper._obs_original = fn
    return wrapper


def _op_modules():
    from repro.nn import ops
    from repro.nn.ops import activations, basic, conv, reduce, shape

    return ops, (basic, reduce, shape, activations, conv)


def op_profiling_enabled() -> bool:
    return bool(_op_patches)


def enable_op_profiling(tracer: Optional[tracing.Tracer] = None) -> tracing.Tracer:
    """Patch the op namespace with timed wrappers (idempotent)."""
    tracer = tracer or tracing.get_tracer()
    if _op_patches:
        return tracer
    ops_pkg, submodules = _op_modules()
    wrappers: Dict[str, object] = {}
    for name in ops_pkg.__all__:
        if name in _NON_OPS:
            continue
        original = getattr(ops_pkg, name)
        if not callable(original) or hasattr(original, "_obs_original"):
            continue
        wrapper = _timed_op(name, original, tracer)
        wrappers[name] = wrapper
        _op_patches.append((ops_pkg, name, original))
        setattr(ops_pkg, name, wrapper)
    # Also patch the defining submodules so intra-op calls (e.g. reductions
    # built on basic ops) and `from repro.nn.ops import basic` users are seen.
    for module in submodules:
        for name, wrapper in wrappers.items():
            original = getattr(module, name, None)
            if original is not None and not hasattr(original, "_obs_original"):
                _op_patches.append((module, name, original))
                setattr(module, name, wrapper)
    return tracer


def disable_op_profiling() -> None:
    """Restore every patched op (safe to call when already disabled)."""
    while _op_patches:
        module, name, original = _op_patches.pop()
        setattr(module, name, original)


@contextlib.contextmanager
def profile_ops(tracer: Optional[tracing.Tracer] = None):
    """``with profile_ops() as tracer:`` — op timing scoped to the block."""
    was_enabled = op_profiling_enabled()
    tracer = enable_op_profiling(tracer)
    try:
        yield tracer
    finally:
        if not was_enabled:
            disable_op_profiling()


# ----------------------------------------------------------------------
def module_profiling_enabled() -> bool:
    return _module_patch is not None


def enable_module_profiling(tracer: Optional[tracing.Tracer] = None) -> tracing.Tracer:
    """Wrap ``Module.__call__`` with a per-class forward span (idempotent)."""
    global _module_patch
    tracer = tracer or tracing.get_tracer()
    if _module_patch is not None:
        return tracer
    from repro.nn.layers.base import Module

    original = Module.__call__

    def timed_call(self, *args, **kwargs):
        with tracer.span(f"module.{type(self).__name__}"):
            return original(self, *args, **kwargs)

    timed_call._obs_original = original
    Module.__call__ = timed_call
    _module_patch = (Module, original)
    return tracer


def disable_module_profiling() -> None:
    global _module_patch
    if _module_patch is None:
        return
    module_cls, original = _module_patch
    module_cls.__call__ = original
    _module_patch = None


@contextlib.contextmanager
def profile_modules(tracer: Optional[tracing.Tracer] = None):
    """``with profile_modules() as tracer:`` — per-layer forward timing."""
    was_enabled = module_profiling_enabled()
    tracer = enable_module_profiling(tracer)
    try:
        yield tracer
    finally:
        if not was_enabled:
            disable_module_profiling()


# ----------------------------------------------------------------------
def top_ops(
    rows: Optional[List[Dict]] = None,
    limit: int = 15,
    tracer: Optional[tracing.Tracer] = None,
) -> List[Dict]:
    """Top profiled spans (``op.*`` / ``module.*``) ranked by self time."""
    if rows is None:
        rows = (tracer or tracing.get_tracer()).snapshot()
    profiled = [
        row
        for row in rows
        if row["name"].startswith("op.") or row["name"].startswith("module.")
    ]
    profiled.sort(key=lambda row: row["self_s"], reverse=True)
    return profiled[:limit]
