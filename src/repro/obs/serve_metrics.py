"""Live telemetry over HTTP: ``python -m repro.obs.serve_metrics``.

A stdlib-only (``http.server``) endpoint that renders the process-global
observability state *while the process runs* — the first half of the
ROADMAP's always-on serving gateway:

- ``/metrics`` — Prometheus text exposition of the
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges, histogram
  quantile summaries);
- ``/metrics.json`` — the registry snapshot plus tracing aggregates as one
  JSON document;
- ``/traces`` — recent recorded spans (``?limit=N``) as JSON;
- ``/trace.json`` — the same spans as a Chrome trace-event document
  (download and load into Perfetto / ``chrome://tracing``);
- ``/healthz`` — liveness probe.

Run standalone (``--port 9109``) next to a training run, or embed:
:func:`start_exporter` binds an ephemeral port and serves from a daemon
thread (``python -m repro.serve.bench --telemetry-port 0`` and
``runner.execute`` under ``REPRO_TELEMETRY_PORT`` both do this).
"""

from __future__ import annotations

import argparse
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs import metrics as obs_metrics
from repro.obs import tracing

TELEMETRY_PORT_ENV = "REPRO_TELEMETRY_PORT"

_INDEX = """repro live telemetry
/metrics       Prometheus text exposition
/metrics.json  JSON snapshot (metrics + tracing aggregates)
/traces        recent trace spans (?limit=N)
/trace.json    Chrome trace events (load in Perfetto)
/healthz       liveness
"""


def _prometheus_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sanitize_name(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "_:" else "_" for ch in name)


def _label_block(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_prometheus_escape(str(value))}"' for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry: Optional[obs_metrics.MetricsRegistry] = None) -> str:
    """The registry as Prometheus text exposition format (version 0.0.4).

    Histograms render as summaries: ``<name>{quantile="0.5"}`` lines plus
    ``<name>_sum`` / ``<name>_count`` — exact below the reservoir cap,
    estimates beyond it (see :class:`~repro.obs.metrics.Histogram`).
    """
    registry = registry or obs_metrics.get_registry()
    lines: List[str] = []
    typed = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for row in registry.export_rows():
        name = _sanitize_name(row["name"])
        labels = row["labels"]
        if row["kind"] == "counter":
            declare(name, "counter")
            lines.append(f"{name}{_label_block(labels)} {row['value']:.17g}")
        elif row["kind"] == "gauge":
            declare(name, "gauge")
            lines.append(f"{name}{_label_block(labels)} {row['value']:.17g}")
        else:  # histogram -> summary
            declare(name, "summary")
            summary = row["summary"]
            for q, value in sorted(row["quantiles"].items()):
                lines.append(
                    f"{name}{_label_block(labels, {'quantile': repr(q)})} {value:.17g}"
                )
            lines.append(f"{name}_sum{_label_block(labels)} {summary.get('sum', 0.0):.17g}")
            lines.append(f"{name}_count{_label_block(labels)} {summary.get('count', 0)}")
    return "\n".join(lines) + "\n"


def telemetry_snapshot(registry: Optional[obs_metrics.MetricsRegistry] = None) -> Dict:
    """Everything ``/metrics.json`` serves, as a plain dict."""
    registry = registry or obs_metrics.get_registry()
    return {
        "metrics": registry.snapshot(),
        "tracing": {
            "aggregates": tracing.snapshot(),
            "recording": tracing.is_recording(),
        },
    }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1.0"

    def _send(self, body: str, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._send(
                    render_prometheus(self.server.registry),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route in ("/metrics.json", "/snapshot"):
                self._send(
                    json.dumps(telemetry_snapshot(self.server.registry), default=str),
                    "application/json",
                )
            elif route == "/traces":
                params = parse_qs(parsed.query)
                limit = int(params.get("limit", ["200"])[0])
                self._send(
                    json.dumps({"spans": tracing.recent(limit)}, default=str),
                    "application/json",
                )
            elif route == "/trace.json":
                self._send(json.dumps(tracing.chrome_trace(), default=str), "application/json")
            elif route == "/healthz":
                self._send("ok\n", "text/plain")
            elif route == "/":
                self._send(_INDEX, "text/plain")
            else:
                self._send("not found\n", "text/plain", status=404)
        except BrokenPipeError:  # client went away mid-scrape; not our problem
            pass

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes must not spam the serving process's stdout


class TelemetryServer:
    """A threaded HTTP exporter bound to ``host:port`` (0 = ephemeral)."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[obs_metrics.MetricsRegistry] = None,
    ):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.registry = registry  # None -> handler uses the default
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_exporter(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[obs_metrics.MetricsRegistry] = None,
) -> TelemetryServer:
    """Bind and start serving from a daemon thread; returns the server."""
    return TelemetryServer(port=port, host=host, registry=registry).start()


_EMBEDDED: Optional[TelemetryServer] = None
_EMBEDDED_LOCK = threading.Lock()


def ensure_exporter_from_env() -> Optional[TelemetryServer]:
    """Start (once) the process-wide exporter when ``REPRO_TELEMETRY_PORT``
    is set; returns it, or None when the env var is absent/empty."""
    import os

    global _EMBEDDED
    value = os.environ.get(TELEMETRY_PORT_ENV)
    if not value:
        return None
    with _EMBEDDED_LOCK:
        if _EMBEDDED is None:
            _EMBEDDED = start_exporter(port=int(value))
        return _EMBEDDED


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.serve_metrics", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--port", type=int, default=9109)
    parser.add_argument("--host", default="127.0.0.1")
    args = parser.parse_args(argv)
    server = TelemetryServer(port=args.port, host=args.host)
    print(f"telemetry at {server.url} (/metrics /metrics.json /traces /trace.json)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
