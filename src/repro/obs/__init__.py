"""`repro.obs` — zero-dependency observability for the whole stack.

Four pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.metrics` — counters/gauges/histograms with labels in a
  process-global registry (snapshot/reset).
- :mod:`repro.obs.tracing` — nestable ``span("name")`` wall-clock spans
  with total/self-time aggregation.
- :mod:`repro.obs.profiler` — opt-in op-level and per-``Module`` timing
  hooks over ``repro.nn`` ("top ops by self time").
- :mod:`repro.obs.runlog` / :mod:`repro.obs.observers` — structured JSONL
  run logs plus the ``Trainer.fit`` observer callbacks (console, metrics,
  JSONL); rendered by ``python -m repro.obs.report``.
"""

from repro.obs import metrics, profiler, runlog, tracing
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.observers import (
    ConsoleObserver,
    JsonlObserver,
    MetricsObserver,
    TrainingObserver,
)
from repro.obs.profiler import (
    disable_op_profiling,
    enable_op_profiling,
    profile_modules,
    profile_ops,
    top_ops,
)
from repro.obs.runlog import RunLogger, read_events
from repro.obs.tracing import Tracer, get_tracer, span

__all__ = [
    "ConsoleObserver",
    "JsonlObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "RunLogger",
    "Tracer",
    "TrainingObserver",
    "disable_op_profiling",
    "enable_op_profiling",
    "get_registry",
    "get_tracer",
    "metrics",
    "profile_modules",
    "profile_ops",
    "profiler",
    "read_events",
    "runlog",
    "span",
    "top_ops",
    "tracing",
]
