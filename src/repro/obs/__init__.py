"""`repro.obs` — zero-dependency observability for the whole stack.

Six pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.metrics` — counters/gauges/histograms with labels in a
  process-global registry (snapshot/reset); histograms keep a bounded
  reservoir so long runs stay O(1) in memory.
- :mod:`repro.obs.tracing` — nestable ``span("name")`` wall-clock spans
  with total/self-time aggregation, plus opt-in request-scoped trace
  *recording* (trace/span ids, parent links, cross-thread contexts) with
  JSONL and Chrome-trace/Perfetto exporters.
- :mod:`repro.obs.profiler` — opt-in op-level and per-``Module`` timing
  hooks over ``repro.nn`` ("top ops by self time").
- :mod:`repro.obs.runlog` / :mod:`repro.obs.observers` — structured JSONL
  run logs plus the ``Trainer.fit`` observer callbacks (console, metrics,
  JSONL); rendered by ``python -m repro.obs.report``.
- :mod:`repro.obs.drift` — dependency-free drift detectors (EWMA +
  Page–Hinkley) and SLO budget tracking; wired to live services by
  :mod:`repro.serve.monitor`.
- :mod:`repro.obs.serve_metrics` — ``python -m repro.obs.serve_metrics``:
  a stdlib HTTP exporter serving Prometheus text, JSON snapshots, and
  recent traces while a run is alive.
"""

from repro.obs import drift, metrics, profiler, runlog, serve_metrics, tracing
from repro.obs.drift import DriftDetector, SloSpec, SloTracker
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.observers import (
    ConsoleObserver,
    JsonlObserver,
    MetricsObserver,
    TrainingObserver,
)
from repro.obs.profiler import (
    disable_op_profiling,
    enable_op_profiling,
    profile_modules,
    profile_ops,
    top_ops,
)
from repro.obs.runlog import RunLogger, read_events
from repro.obs.serve_metrics import TelemetryServer, render_prometheus, start_exporter
from repro.obs.tracing import (
    TraceContext,
    Tracer,
    get_tracer,
    span,
    start_recording,
    stop_recording,
    use_context,
)

__all__ = [
    "ConsoleObserver",
    "DriftDetector",
    "JsonlObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "RunLogger",
    "SloSpec",
    "SloTracker",
    "TelemetryServer",
    "TraceContext",
    "Tracer",
    "TrainingObserver",
    "disable_op_profiling",
    "drift",
    "enable_op_profiling",
    "get_registry",
    "get_tracer",
    "metrics",
    "profile_modules",
    "profile_ops",
    "profiler",
    "read_events",
    "render_prometheus",
    "runlog",
    "serve_metrics",
    "span",
    "start_exporter",
    "start_recording",
    "stop_recording",
    "tracing",
    "use_context",
]
