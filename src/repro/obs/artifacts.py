"""Atomic artifact writes: results files are whole or absent, never torn.

Every ``results/*.json`` / ``*.txt`` the experiment scripts produce is a
downstream input — the benchmark comparator, the report renderer, a human
diffing two runs. A process killed mid-``json.dump`` would otherwise leave
a half-written file that *parses as damage* only at the worst time: on the
next run's read. These helpers stage the content in a temp file in the
same directory (same filesystem, so the final ``os.replace`` is atomic)
and flush+fsync before renaming; a crash at any point leaves either the
previous version or nothing — never a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional


def atomic_write_text(path: str, content: str, encoding: str = "utf-8") -> None:
    """Write ``content`` to ``path`` so readers never observe a torn file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding=encoding) as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # Failed mid-write: drop the temp file, leave any previous version
        # of the artifact untouched.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str, payload: Any, indent: Optional[int] = 2, sort_keys: bool = False
) -> None:
    """Serialize ``payload`` and atomically write it to ``path``.

    Serialization happens *before* any file is touched, so a
    non-serializable payload cannot destroy the previous artifact.
    """
    content = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write_text(path, content + "\n")


__all__ = ["atomic_write_json", "atomic_write_text"]
