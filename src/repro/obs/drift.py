"""Forecast-error drift detection and SLO budget tracking (pure leaf).

A static checkpoint degrades silently as the demand distribution moves;
this module is the *detector* half of the rolling-adaptation loop (ROADMAP
item 2): feed it the service's forecast errors as held-out slots arrive and
it says — deterministically — when the error level has shifted enough to
warrant a warm-start fine-tune.

Two detectors share :class:`DriftDetector`:

- an **EWMA** of the error stream compared against the frozen warm-up
  baseline (the *drift score*: fractional error inflation, 0 when healthy);
- a **Page–Hinkley** test on the same stream — the classic sequential
  change-point statistic: cumulative deviation of each sample from the
  running mean (minus a drift allowance ``delta``), fired when the
  statistic exceeds ``threshold``.

A detection *re-arms* the detector by re-baselining on the post-shift
stream, so one sustained shift fires exactly once instead of once per
sample.

:class:`SloTracker` is the latency half: rolling windows of request
latency / deadline misses / degradations scored against explicit
objectives, with error-budget burn rates (observed bad fraction ÷ budget).

Layering: this file is a dependency-free leaf — stdlib only, no ``repro``
imports (enforced by ``scripts/check_layering.py``) — so any layer can
embed a detector. Wiring detections into run logs and metrics lives in
:mod:`repro.serve.monitor`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


class Ewma:
    """Exponentially weighted moving average; ``value`` is None until fed."""

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.value: Optional[float] = None

    def update(self, x: float) -> float:
        x = float(x)
        if self.value is None:
            self.value = x
        else:
            self.value = self.alpha * x + (1.0 - self.alpha) * self.value
        return self.value

    def reset(self) -> None:
        self.value = None


class PageHinkley:
    """Page–Hinkley test for an upward mean shift in a stream.

    Maintains ``m_t = sum_i (x_i - mean_i - delta)`` and its running
    minimum; the statistic is ``m_t - min(m_t)`` and :meth:`update` returns
    True once it exceeds ``threshold`` (after ``min_samples``).
    """

    def __init__(self, delta: float = 0.005, threshold: float = 0.5, min_samples: int = 10):
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    @property
    def statistic(self) -> float:
        return self._cumulative - self._minimum

    def update(self, x: float) -> bool:
        x = float(x)
        self._count += 1
        self._mean += (x - self._mean) / self._count
        self._cumulative += x - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        return self._count >= self.min_samples and self.statistic > self.threshold


@dataclass
class DriftReport:
    """One :meth:`DriftDetector.update` outcome."""

    error: float
    score: float  # fractional EWMA inflation over the baseline (>= 0)
    drifted: bool  # True exactly when this sample fired a detection
    detector: Optional[str] = None  # "ewma" | "page_hinkley" when fired
    baseline: Optional[float] = None
    ewma: Optional[float] = None
    samples: int = 0


class DriftDetector:
    """EWMA-vs-baseline plus Page–Hinkley over a forecast-error stream.

    The first ``warmup`` samples freeze the baseline (their mean); after
    that each sample updates both detectors and fires when either trips:
    the EWMA path when the smoothed error exceeds ``baseline * (1 +
    score_threshold)``, the Page–Hinkley path on its cumulative statistic.
    After a detection the detector re-baselines (new warm-up on the
    post-shift stream), so a single sustained shift is a single event.
    """

    def __init__(
        self,
        warmup: int = 16,
        ewma_alpha: float = 0.2,
        score_threshold: float = 0.5,
        ph_delta: Optional[float] = None,
        ph_threshold: Optional[float] = None,
        min_baseline: float = 1e-9,
    ):
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        self.warmup = int(warmup)
        self.score_threshold = float(score_threshold)
        self.min_baseline = float(min_baseline)
        self._ewma_alpha = float(ewma_alpha)
        self._ph_delta = ph_delta
        self._ph_threshold = ph_threshold
        self.detections: List[Dict] = []
        self._rearm()

    def _rearm(self) -> None:
        self._warmup_values: List[float] = []
        self.baseline: Optional[float] = None
        self.ewma = Ewma(self._ewma_alpha)
        self._ph: Optional[PageHinkley] = None
        self.samples = 0

    def _arm(self) -> None:
        baseline = sum(self._warmup_values) / len(self._warmup_values)
        self.baseline = max(baseline, self.min_baseline)
        # Page–Hinkley scales with the error magnitude: allow ``delta`` of
        # slack per sample and fire after a sustained ~one-baseline excess.
        delta = self._ph_delta if self._ph_delta is not None else 0.05 * self.baseline
        threshold = (
            self._ph_threshold
            if self._ph_threshold is not None
            else max(2.0 * self.baseline, 10.0 * self.min_baseline)
        )
        self._ph = PageHinkley(delta=delta, threshold=threshold, min_samples=2)

    def update(self, error: float) -> DriftReport:
        """Feed one forecast error; returns score + whether drift fired."""
        error = float(error)
        if not math.isfinite(error):
            raise ValueError(f"forecast error must be finite, got {error}")
        self.samples += 1
        if self.baseline is None:
            self._warmup_values.append(error)
            self.ewma.update(error)
            if len(self._warmup_values) >= self.warmup:
                self._arm()
            return DriftReport(
                error=error, score=0.0, drifted=False, ewma=self.ewma.value,
                samples=self.samples,
            )

        smoothed = self.ewma.update(error)
        score = max(0.0, smoothed / self.baseline - 1.0)
        fired_ph = self._ph.update(error)
        fired_ewma = score > self.score_threshold
        drifted = fired_ewma or fired_ph
        report = DriftReport(
            error=error,
            score=score,
            drifted=drifted,
            detector="ewma" if fired_ewma else ("page_hinkley" if fired_ph else None),
            baseline=self.baseline,
            ewma=smoothed,
            samples=self.samples,
        )
        if drifted:
            self.detections.append(
                {
                    "sample": self.samples,
                    "detector": report.detector,
                    "score": score,
                    "baseline": self.baseline,
                    "ewma": smoothed,
                }
            )
            self._rearm()
        return report


# ----------------------------------------------------------------------
# SLO budgets.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloSpec:
    """Serving objectives scored over a rolling window of requests."""

    p99_latency_seconds: float = 0.5
    deadline_miss_budget: float = 0.01  # tolerated fraction of misses
    degraded_budget: float = 0.05  # tolerated fraction of degraded answers
    window: int = 256  # requests per rolling window
    min_samples: int = 20  # below this, no verdicts are issued


@dataclass
class SloStatus:
    """One evaluation of the rolling window against the objectives."""

    samples: int
    p99_latency_seconds: float
    deadline_miss_fraction: float
    degraded_fraction: float
    latency_burn: float  # p99 / objective (1.0 = exactly at target)
    deadline_miss_burn: float  # miss fraction / budget
    degraded_burn: float  # degraded fraction / budget
    breaches: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict:
        return {
            "samples": self.samples,
            "p99_latency_seconds": self.p99_latency_seconds,
            "deadline_miss_fraction": self.deadline_miss_fraction,
            "degraded_fraction": self.degraded_fraction,
            "latency_burn": self.latency_burn,
            "deadline_miss_burn": self.deadline_miss_burn,
            "degraded_burn": self.degraded_burn,
            "breaches": list(self.breaches),
        }


class SloTracker:
    """Rolling-window SLO accounting over served requests."""

    def __init__(self, spec: Optional[SloSpec] = None):
        self.spec = spec or SloSpec()
        window = self.spec.window
        self._latencies: Deque[float] = deque(maxlen=window)
        self._misses: Deque[bool] = deque(maxlen=window)
        self._degraded: Deque[bool] = deque(maxlen=window)
        self.total = 0

    def observe(
        self, latency_seconds: float, deadline_missed: bool = False, degraded: bool = False
    ) -> None:
        self._latencies.append(float(latency_seconds))
        self._misses.append(bool(deadline_missed))
        self._degraded.append(bool(degraded))
        self.total += 1

    @staticmethod
    def _percentile(values: List[float], q: float) -> float:
        if not values:
            return float("nan")
        ordered = sorted(values)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def status(self) -> Optional[SloStatus]:
        """Score the current window; None below ``min_samples``."""
        samples = len(self._latencies)
        if samples < self.spec.min_samples:
            return None
        p99 = self._percentile(list(self._latencies), 99.0)
        miss_fraction = sum(self._misses) / samples
        degraded_fraction = sum(self._degraded) / samples
        spec = self.spec
        latency_burn = p99 / spec.p99_latency_seconds if spec.p99_latency_seconds > 0 else 0.0
        miss_burn = (
            miss_fraction / spec.deadline_miss_budget if spec.deadline_miss_budget > 0 else 0.0
        )
        degraded_burn = (
            degraded_fraction / spec.degraded_budget if spec.degraded_budget > 0 else 0.0
        )
        breaches = []
        if latency_burn > 1.0:
            breaches.append("p99_latency")
        if miss_burn > 1.0:
            breaches.append("deadline_miss")
        if degraded_burn > 1.0:
            breaches.append("degraded")
        return SloStatus(
            samples=samples,
            p99_latency_seconds=p99,
            deadline_miss_fraction=miss_fraction,
            degraded_fraction=degraded_fraction,
            latency_burn=latency_burn,
            deadline_miss_burn=miss_burn,
            degraded_burn=degraded_burn,
            breaches=breaches,
        )


__all__ = [
    "DriftDetector",
    "DriftReport",
    "Ewma",
    "PageHinkley",
    "SloSpec",
    "SloStatus",
    "SloTracker",
]
