"""Nestable wall-clock spans with total/self-time aggregation.

``with span("bikecap.routing"): ...`` records one timed interval into the
process-global :class:`Tracer`. Spans nest: a span's *self time* is its
elapsed wall-clock minus the elapsed time of the spans opened inside it, so
an aggregated snapshot answers "where does the time actually go" without
double counting parent/child pairs.

The span stack is thread-local; aggregates are shared across threads. A
span always records on exit, including when the body raises.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional


class SpanStats:
    """Aggregate for one span name: call count, total and self seconds."""

    __slots__ = ("name", "count", "total_s", "self_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
        }


class _Span:
    """Context manager pushed on the tracer's thread-local stack."""

    __slots__ = ("_tracer", "_name", "_start", "_child_s")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name
        self._start = 0.0
        self._child_s = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._tracer._stack()
        # Pop self even if the stack was perturbed by a mismatched exit.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1]._child_s += elapsed
        self._tracer._record(self._name, elapsed, elapsed - self._child_s)


class Tracer:
    """Aggregates spans by name; produces sorted snapshots."""

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._stats: Dict[str, SpanStats] = {}

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, name: str, elapsed: float, self_time: float) -> None:
        with self._lock:
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = SpanStats(name)
            stats.count += 1
            stats.total_s += elapsed
            stats.self_s += self_time

    # ------------------------------------------------------------------
    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def depth(self) -> int:
        """Current nesting depth on this thread (0 outside any span)."""
        return len(self._stack())

    def snapshot(self, prefix: Optional[str] = None) -> List[Dict[str, float]]:
        """Aggregates sorted by self time, optionally filtered by name prefix."""
        with self._lock:
            rows = [
                stats.as_dict()
                for stats in self._stats.values()
                if prefix is None or stats.name.startswith(prefix)
            ]
        rows.sort(key=lambda row: row["self_s"], reverse=True)
        return rows

    def get(self, name: str) -> Optional[SpanStats]:
        with self._lock:
            return self._stats.get(name)

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()


_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer the library's built-in spans record into."""
    return _DEFAULT


def span(name: str) -> _Span:
    """Open a span on the default tracer: ``with span("phase"): ...``."""
    return _DEFAULT.span(name)


def snapshot(prefix: Optional[str] = None) -> List[Dict[str, float]]:
    return _DEFAULT.snapshot(prefix=prefix)


def reset() -> None:
    _DEFAULT.reset()
