"""Wall-clock spans: aggregated self-time stats plus request-scoped traces.

``with span("bikecap.routing"): ...`` records one timed interval into the
process-global :class:`Tracer`. Spans nest: a span's *self time* is its
elapsed wall-clock minus the elapsed time of the spans opened inside it, so
an aggregated snapshot answers "where does the time actually go" without
double counting parent/child pairs.

On top of the aggregates sits an opt-in **trace recorder**: while
:func:`start_recording` is active, every closed span also lands in a
bounded in-memory ring buffer as a :class:`SpanRecord` — trace id, span id,
parent link, wall/monotonic start, duration, attributes, thread name — so a
single slow request can be inspected rather than averaged away. Recording
is off by default and the aggregate math is byte-for-byte the same either
way, which is what keeps the profiler/report paths untouched.

Context propagation: a span's parent is normally the innermost open span on
the same thread. Work handed to another thread carries its origin along
explicitly — capture :func:`current_context` at the hand-off point and
either open the remote span with ``span(name, parent=ctx)`` or wrap the
remote block in ``with use_context(ctx): ...``. Manual (non-stack) spans
for request lifecycles that start on one thread and finish on another come
from :func:`start_span` / ``handle.end()``.

Recorded traces export two ways: :func:`dump_jsonl` (one span per line,
beside run logs) and :func:`chrome_trace` / :func:`dump_chrome_trace`
(Chrome trace-event JSON — load it in Perfetto or ``chrome://tracing``;
each trace renders as its own track with spans nested by time).

The span stack is thread-local; aggregates and the ring are shared across
threads. A span always records on exit, including when the body raises.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, NamedTuple, Optional

TRACE_ENV = "REPRO_TRACE"
TRACE_CAPACITY_ENV = "REPRO_TRACE_CAPACITY"
DEFAULT_RING_CAPACITY = 4096

_IDS = itertools.count(1)


def _new_id(prefix: str) -> str:
    return f"{prefix}{next(_IDS):08x}"


class TraceContext(NamedTuple):
    """A position inside a trace: enough to parent remote work to it."""

    trace_id: str
    span_id: str


class SpanRecord:
    """One finished span (or instant event) in the trace ring buffer."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall",
        "start_s",
        "duration_s",
        "thread",
        "status",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_wall: float,
        start_s: float,
        duration_s: float,
        thread: str,
        status: str = "ok",
        attributes: Optional[Dict] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = start_wall
        self.start_s = start_s
        self.duration_s = duration_s
        self.thread = thread
        self.status = status
        self.attributes = attributes or {}

    def as_dict(self) -> Dict:
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "status": self.status,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record


class SpanStats:
    """Aggregate for one span name: call count, total and self seconds."""

    __slots__ = ("name", "count", "total_s", "self_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
        }


def _resolve_parent(parent) -> Optional[TraceContext]:
    """Normalize a parent argument to a TraceContext (or None)."""
    if parent is None:
        return None
    if isinstance(parent, TraceContext):
        return parent
    context = getattr(parent, "context", None)
    if isinstance(context, TraceContext):
        return context
    raise TypeError(f"parent must be a TraceContext or span handle, got {parent!r}")


class _Span:
    """Context manager pushed on the tracer's thread-local stack."""

    __slots__ = (
        "_tracer",
        "_name",
        "_start",
        "_child_s",
        "_ctx",
        "_parent",
        "_attrs",
        "_wall",
        "_parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, parent=None, attrs: Optional[Dict] = None):
        self._tracer = tracer
        self._name = name
        self._start = 0.0
        self._child_s = 0.0
        self._ctx: Optional[TraceContext] = None
        self._parent = parent
        self._attrs = attrs

    @property
    def context(self) -> Optional[TraceContext]:
        """This span's trace position (None unless recording was on at enter)."""
        return self._ctx

    def __enter__(self) -> "_Span":
        if self._tracer._recording:
            # Resolved before the push below, so "current" is the parent.
            parent = _resolve_parent(self._parent) or self._tracer.current_context()
            trace_id = parent.trace_id if parent is not None else _new_id("t")
            self._parent_id = parent.span_id if parent is not None else None
            self._ctx = TraceContext(trace_id, _new_id("s"))
            self._wall = time.time()
        self._tracer._stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._tracer._stack()
        # Pop self even if the stack was perturbed by a mismatched exit.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1]._child_s += elapsed
        self._tracer._record(self._name, elapsed, elapsed - self._child_s)
        if self._ctx is not None:
            self._tracer._append_record(
                SpanRecord(
                    name=self._name,
                    trace_id=self._ctx.trace_id,
                    span_id=self._ctx.span_id,
                    parent_id=self._parent_id,
                    start_wall=self._wall,
                    start_s=self._start,
                    duration_s=elapsed,
                    thread=threading.current_thread().name,
                    status="error" if exc_type is not None else "ok",
                    attributes=self._attrs,
                )
            )


class _ManualSpan:
    """A detached span: started on one thread, ended (maybe) on another.

    Never touches the thread-local stack and never contributes to the
    aggregated :class:`SpanStats` — it exists purely as a trace record for
    request lifecycles that cross threads (queue → worker → response).
    """

    __slots__ = ("_tracer", "_name", "_ctx", "_parent_id", "_wall", "_start", "_attrs", "_ended")

    def __init__(self, tracer, name, ctx, parent_id, attrs):
        self._tracer = tracer
        self._name = name
        self._ctx = ctx
        self._parent_id = parent_id
        self._wall = time.time()
        self._start = time.perf_counter()
        self._attrs = dict(attrs) if attrs else {}
        self._ended = False

    @property
    def context(self) -> TraceContext:
        return self._ctx

    def end(self, status: str = "ok", **attributes) -> None:
        """Close the span and append its record; idempotent."""
        if self._ended:
            return
        self._ended = True
        if attributes:
            self._attrs.update(attributes)
        self._tracer._append_record(
            SpanRecord(
                name=self._name,
                trace_id=self._ctx.trace_id,
                span_id=self._ctx.span_id,
                parent_id=self._parent_id,
                start_wall=self._wall,
                start_s=self._start,
                duration_s=time.perf_counter() - self._start,
                thread=threading.current_thread().name,
                status=status,
                attributes=self._attrs,
            )
        )


class _NullHandle:
    """Stand-in returned by start_span when recording is off."""

    __slots__ = ()
    context = None

    def end(self, status: str = "ok", **attributes) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class _AttachedContext:
    """``with use_context(ctx):`` — adopt a remote trace position."""

    __slots__ = ("_tracer", "_ctx", "_previous")

    def __init__(self, tracer: "Tracer", ctx: Optional[TraceContext]):
        self._tracer = tracer
        self._ctx = ctx
        self._previous = None

    def __enter__(self):
        local = self._tracer._local
        self._previous = getattr(local, "attached", None)
        local.attached = self._ctx
        return self._ctx

    def __exit__(self, exc_type, exc, tb):
        self._tracer._local.attached = self._previous


class Tracer:
    """Aggregates spans by name; optionally records full trace spans."""

    def __init__(self, ring_capacity: int = DEFAULT_RING_CAPACITY):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._stats: Dict[str, SpanStats] = {}
        self._recording = False
        self._ring: deque = deque(maxlen=ring_capacity)

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, name: str, elapsed: float, self_time: float) -> None:
        with self._lock:
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = SpanStats(name)
            stats.count += 1
            stats.total_s += elapsed
            stats.self_s += self_time

    def _append_record(self, record: SpanRecord) -> None:
        with self._lock:
            self._ring.append(record)

    # ------------------------------------------------------------------
    # Trace recording control.
    # ------------------------------------------------------------------
    @property
    def recording(self) -> bool:
        return self._recording

    def start_recording(self, capacity: Optional[int] = None) -> "Tracer":
        """Begin keeping full span records in the ring buffer."""
        with self._lock:
            if capacity is not None and capacity != self._ring.maxlen:
                self._ring = deque(self._ring, maxlen=int(capacity))
            self._recording = True
        return self

    def stop_recording(self) -> None:
        self._recording = False

    def clear_records(self) -> None:
        with self._lock:
            self._ring.clear()

    def current_context(self) -> Optional[TraceContext]:
        """The innermost open span's context on this thread, else the
        context attached with :meth:`use_context`, else None."""
        for open_span in reversed(self._stack()):
            if open_span._ctx is not None:
                return open_span._ctx
        return getattr(self._local, "attached", None)

    def use_context(self, ctx: Optional[TraceContext]) -> _AttachedContext:
        """Adopt ``ctx`` as this thread's trace position for a block."""
        return _AttachedContext(self, _resolve_parent(ctx))

    # ------------------------------------------------------------------
    def span(self, name: str, parent=None, **attributes) -> _Span:
        """Open a stack span; ``parent`` overrides the thread-local link.

        ``attributes`` are stored on the trace record only (ignored — and
        free — while recording is off).
        """
        return _Span(self, name, parent=parent, attrs=attributes or None)

    def start_span(self, name: str, parent=None, **attributes):
        """A detached span handle: ``.context`` to parent children to it,
        ``.end()`` (any thread) to record it. No-op handle when not
        recording."""
        if not self._recording:
            return _NULL_HANDLE
        parent_ctx = _resolve_parent(parent) or self.current_context()
        trace_id = parent_ctx.trace_id if parent_ctx is not None else _new_id("t")
        ctx = TraceContext(trace_id, _new_id("s"))
        return _ManualSpan(
            self, name, ctx, parent_ctx.span_id if parent_ctx else None, attributes
        )

    def event(self, name: str, parent=None, **attributes) -> None:
        """Record an instant (zero-duration) marker; no-op when not recording."""
        if not self._recording:
            return
        parent_ctx = _resolve_parent(parent) or self.current_context()
        trace_id = parent_ctx.trace_id if parent_ctx is not None else _new_id("t")
        self._append_record(
            SpanRecord(
                name=name,
                trace_id=trace_id,
                span_id=_new_id("s"),
                parent_id=parent_ctx.span_id if parent_ctx else None,
                start_wall=time.time(),
                start_s=time.perf_counter(),
                duration_s=0.0,
                thread=threading.current_thread().name,
                attributes=attributes or None,
            )
        )

    def depth(self) -> int:
        """Current nesting depth on this thread (0 outside any span)."""
        return len(self._stack())

    def snapshot(self, prefix: Optional[str] = None) -> List[Dict[str, float]]:
        """Aggregates sorted by self time, optionally filtered by name prefix."""
        with self._lock:
            rows = [
                stats.as_dict()
                for stats in self._stats.values()
                if prefix is None or stats.name.startswith(prefix)
            ]
        rows.sort(key=lambda row: row["self_s"], reverse=True)
        return rows

    def recent(self, limit: Optional[int] = None) -> List[Dict]:
        """Recorded spans as dicts, oldest first (bounded by the ring)."""
        with self._lock:
            records = list(self._ring)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return [record.as_dict() for record in records]

    def get(self, name: str) -> Optional[SpanStats]:
        with self._lock:
            return self._stats.get(name)

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
            self._ring.clear()


# ----------------------------------------------------------------------
# Exporters.
# ----------------------------------------------------------------------
def chrome_trace(records: Optional[List[Dict]] = None, tracer: Optional[Tracer] = None) -> Dict:
    """Chrome trace-event JSON (Perfetto / ``chrome://tracing`` loadable).

    Each *trace* (request) gets its own synthetic thread track, so the spans
    of one request nest visually by time containment regardless of which OS
    thread executed them; real thread names survive in ``args.thread``.
    """
    if records is None:
        records = (tracer or _DEFAULT).recent()
    track_by_trace: Dict[str, int] = {}
    events = []
    pid = os.getpid()
    for record in records:
        trace_id = record["trace_id"]
        tid = track_by_trace.get(trace_id)
        if tid is None:
            tid = track_by_trace[trace_id] = len(track_by_trace) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"trace {trace_id}"},
                }
            )
        args = {
            "trace_id": trace_id,
            "span_id": record["span_id"],
            "parent_id": record.get("parent_id"),
            "thread": record.get("thread"),
            "status": record.get("status", "ok"),
        }
        args.update(record.get("attributes") or {})
        event = {
            "name": record["name"],
            "cat": "span",
            "pid": pid,
            "tid": tid,
            "ts": record["start_s"] * 1e6,
            "args": args,
        }
        if record.get("duration_s", 0.0) > 0.0:
            event["ph"] = "X"
            event["dur"] = record["duration_s"] * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> str:
    """Write the ring buffer as a Chrome trace JSON file; returns the path."""
    payload = chrome_trace(tracer=tracer)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def dump_jsonl(path: str, tracer: Optional[Tracer] = None) -> str:
    """Write the ring buffer as JSONL (one span per line); returns the path."""
    records = (tracer or _DEFAULT).recent()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str) + "\n")
    return path


# ----------------------------------------------------------------------
# Module-level sugar over the process-global tracer.
# ----------------------------------------------------------------------
_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer the library's built-in spans record into."""
    return _DEFAULT


def span(name: str, parent=None, **attributes) -> _Span:
    """Open a span on the default tracer: ``with span("phase"): ...``."""
    return _DEFAULT.span(name, parent=parent, **attributes)


def start_span(name: str, parent=None, **attributes):
    return _DEFAULT.start_span(name, parent=parent, **attributes)


def event(name: str, parent=None, **attributes) -> None:
    _DEFAULT.event(name, parent=parent, **attributes)


def current_context() -> Optional[TraceContext]:
    return _DEFAULT.current_context()


def use_context(ctx: Optional[TraceContext]) -> _AttachedContext:
    return _DEFAULT.use_context(ctx)


def start_recording(capacity: Optional[int] = None) -> Tracer:
    if capacity is None:
        env = os.environ.get(TRACE_CAPACITY_ENV)
        capacity = int(env) if env else None
    return _DEFAULT.start_recording(capacity)


def stop_recording() -> None:
    _DEFAULT.stop_recording()


def is_recording() -> bool:
    return _DEFAULT.recording


def env_enabled() -> bool:
    """True when ``REPRO_TRACE`` asks for trace recording."""
    return os.environ.get(TRACE_ENV, "0") not in ("0", "", "false")


def recent(limit: Optional[int] = None) -> List[Dict]:
    return _DEFAULT.recent(limit)


def snapshot(prefix: Optional[str] = None) -> List[Dict[str, float]]:
    return _DEFAULT.snapshot(prefix=prefix)


def reset() -> None:
    _DEFAULT.reset()
