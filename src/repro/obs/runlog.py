"""Structured JSONL run logs.

A :class:`RunLogger` writes one JSON object per line: a ``run_start`` event
on open (seed + config recorded), arbitrary events while open, and a
``run_end`` event on close. Timestamps are *monotonic seconds since open*
(``ts``) plus a wall-clock ``time`` for cross-run correlation.

While a logger is open it is registered process-globally, so deeply nested
code (the routing loop, the trainer's epoch loop, boosting rounds) can emit
events with the module-level :func:`emit` without threading a logger handle
through every API. When no logger is open, :func:`emit` is a no-op costing
one truthiness check.

Default run-log files live under ``results/runs/`` (override with the
``REPRO_RUNLOG_DIR`` environment variable; set ``REPRO_RUNLOG=0`` to
disable the experiment runners' automatic logs entirely).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Dict, List, Optional

RUNLOG_DIR_ENV = "REPRO_RUNLOG_DIR"
RUNLOG_ENV = "REPRO_RUNLOG"

_ACTIVE: List["RunLogger"] = []
_SEQUENCE = itertools.count()


class RunLogger:
    """Append-only JSONL event writer for one run."""

    def __init__(
        self,
        path: str,
        run_id: Optional[str] = None,
        seed: Optional[int] = None,
        config: Optional[Dict] = None,
    ):
        self.path = path
        self.run_id = run_id or os.path.splitext(os.path.basename(path))[0]
        self.seed = seed
        self.config = config
        self._handle = None
        self._t0 = 0.0
        # Serializes writers: concurrent event() calls (service worker,
        # client threads, monitors) must each land as one intact JSON line.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._handle is not None

    def open(self) -> "RunLogger":
        if self.is_open:
            return self
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "w")
        self._t0 = time.monotonic()
        self._write(
            {
                "event": "run_start",
                "ts": 0.0,
                "time": time.time(),
                "run_id": self.run_id,
                "seed": self.seed,
                "config": self.config,
            }
        )
        _ACTIVE.append(self)
        return self

    def event(self, event_type: str, **fields) -> None:
        if not self.is_open:
            raise RuntimeError(f"run logger for {self.path} is not open")
        record = {"event": event_type, "ts": time.monotonic() - self._t0}
        record.update(fields)
        self._write(record)

    def close(self, status: str = "ok", **fields) -> None:
        if not self.is_open:
            return
        record = {
            "event": "run_end",
            "ts": time.monotonic() - self._t0,
            "time": time.time(),
            "run_id": self.run_id,
            "status": status,
        }
        record.update(fields)
        self._write(record)
        try:
            _ACTIVE.remove(self)
        except ValueError:
            pass
        with self._lock:
            if self._handle is not None:
                self._handle.close()
            self._handle = None

    def _write(self, record: Dict) -> None:
        # Serialize the line outside the lock (the expensive part), then
        # write-and-flush atomically so concurrent emitters interleave at
        # line granularity only. A writer racing close() drops the event
        # instead of crashing the run.
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line)
            self._handle.flush()

    # ------------------------------------------------------------------
    def __enter__(self) -> "RunLogger":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(status="error" if exc_type is not None else "ok")


# ----------------------------------------------------------------------
# Module-level dispatch to whatever loggers are currently open.
# ----------------------------------------------------------------------
def active() -> bool:
    """True when at least one run logger is open (emit would do work)."""
    return bool(_ACTIVE)


def emit(event_type: str, **fields) -> None:
    """Write an event to every open run logger; no-op when none are open."""
    if not _ACTIVE:
        return
    for logger in list(_ACTIVE):
        logger.event(event_type, **fields)


# ----------------------------------------------------------------------
# Default file placement for the experiment runners.
# ----------------------------------------------------------------------
def enabled() -> bool:
    return os.environ.get(RUNLOG_ENV, "1") != "0"


def default_dir() -> str:
    return os.environ.get(RUNLOG_DIR_ENV, os.path.join("results", "runs"))


def new_run_path(label: str, directory: Optional[str] = None) -> str:
    """A unique ``run-<label>-<pid>-<seq>.jsonl`` path under the run-log dir."""
    directory = directory if directory is not None else default_dir()
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in label)
    name = f"run-{safe}-{os.getpid()}-{next(_SEQUENCE):04d}.jsonl"
    return os.path.join(directory, name)


def start_run(
    label: str,
    seed: Optional[int] = None,
    config: Optional[Dict] = None,
    directory: Optional[str] = None,
) -> Optional[RunLogger]:
    """Open a run logger under the default directory, or None when disabled."""
    if not enabled():
        return None
    path = new_run_path(label, directory=directory)
    return RunLogger(path, seed=seed, config=config).open()


def read_events(path: str) -> List[Dict]:
    """Parse a JSONL run log back into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
