"""The 3D squash non-linearity (paper Eq. 3).

``squash(s) = (||s||^2 / (1 + ||s||^2)) * (s / ||s||)``

applied along the capsule-dimension axis. The output length encodes demand
intensity: long activity vectors are shrunk to just below one, short vectors
to nearly zero (Sabour et al., 2017).
"""

from __future__ import annotations

from repro.nn import fusion, ops
from repro.nn.tensor import Tensor, as_tensor

_EPSILON = 1e-9


def squash(tensor, axis: int = -1) -> Tensor:
    """Squash ``tensor`` along ``axis`` so its norm lies in [0, 1).

    Numerically safe at the zero vector: an ``_EPSILON`` is added under the
    square root, which maps zero vectors to zero vectors with finite
    gradients.
    """
    tensor = as_tensor(tensor)
    fused = fusion.fused_squash(tensor, axis=axis, epsilon=_EPSILON)
    if fused is not None:
        return fused
    squared_norm = ops.sum(ops.mul(tensor, tensor), axis=axis, keepdims=True)
    norm = ops.sqrt(ops.add(squared_norm, _EPSILON))
    scale = ops.div(squared_norm, ops.mul(ops.add(squared_norm, 1.0), norm))
    return ops.mul(tensor, scale)


def capsule_length(tensor, axis: int = -1) -> Tensor:
    """Euclidean length of each capsule along ``axis`` (demand intensity)."""
    tensor = as_tensor(tensor)
    squared_norm = ops.sum(ops.mul(tensor, tensor), axis=axis, keepdims=False)
    return ops.sqrt(ops.add(squared_norm, _EPSILON))
