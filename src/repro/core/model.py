"""BikeCAP: the end-to-end deep spatial-temporal capsule network (Fig. 4).

Pipeline: input demand series → historical capsules (pyramid convolution +
3-D squash) → future capsules (spatial-temporal routing) → 3-D deconvolution
decoder → multi-step downstream demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn import init, ops
from repro.nn.layers.base import Module
from repro.nn.tensor import Tensor, as_tensor
from repro.core.capsules import FutureCapsules, HistoricalCapsules
from repro.core.decoder import Decoder3D, ReshapeDecoder
from repro.obs import tracing


@dataclass
class BikeCAPConfig:
    """Hyper-parameters; defaults follow the paper's Sec. IV-C.

    ``feature_indices`` selects which input channels the model consumes —
    the BikeCap-Sub ablation keeps only the downstream (bike) channels.
    """

    grid: Tuple[int, int] = (16, 12)
    history: int = 8
    horizon: int = 4
    features: int = 4
    capsule_channels: int = 1
    capsule_dim: int = 4
    future_capsule_dim: int = 4
    pyramid_size: int = 5
    routing_iterations: int = 3
    decoder_hidden: int = 8
    use_pyramid: bool = True
    use_3d_decoder: bool = True
    # Sec. V-A stability extension: one vote transform per future slot,
    # reducing the run-to-run variance the paper reports as a limitation.
    separate_temporal_capsules: bool = False
    feature_indices: Optional[Sequence[int]] = None
    seed: Optional[int] = None

    def __post_init__(self):
        if self.history < 1 or self.horizon < 1:
            raise ValueError("history and horizon must be positive")
        if self.pyramid_size < 1:
            raise ValueError("pyramid size must be positive")
        if self.feature_indices is not None:
            indices = tuple(int(i) for i in self.feature_indices)
            if any(i < 0 or i >= self.features for i in indices):
                raise ValueError(
                    f"feature_indices {indices} out of range for {self.features} features"
                )
            self.feature_indices = indices

    @property
    def model_features(self) -> int:
        """Number of channels the network actually consumes."""
        if self.feature_indices is not None:
            return len(self.feature_indices)
        return self.features


class BikeCAP(Module):
    """Multi-step bike demand predictor.

    ``forward`` maps ``(N, h, G1, G2, f)`` history windows to
    ``(N, p, G1, G2)`` future downstream (bike pick-up) demand.
    """

    def __init__(self, config: BikeCAPConfig):
        super().__init__()
        self.config = config
        rng = init.default_rng(config.seed)
        self.historical = HistoricalCapsules(
            in_features=config.model_features,
            capsule_channels=config.capsule_channels,
            capsule_dim=config.capsule_dim,
            pyramid_size=config.pyramid_size,
            use_pyramid=config.use_pyramid,
            rng=rng,
        )
        self.future = FutureCapsules(
            in_capsule_dim=config.capsule_dim,
            out_capsule_dim=config.future_capsule_dim,
            horizon=config.horizon,
            iterations=config.routing_iterations,
            separate_temporal_capsules=config.separate_temporal_capsules,
            rng=rng,
        )
        decoder_cls = Decoder3D if config.use_3d_decoder else ReshapeDecoder
        self.decoder = decoder_cls(
            config.future_capsule_dim, hidden_channels=config.decoder_hidden, rng=rng
        )

    def forward(self, x) -> Tensor:
        with tracing.span("bikecap.forward"):
            x = as_tensor(x)
            if x.ndim != 5:
                raise ValueError(f"expected (N, h, G1, G2, f) input, got shape {x.shape}")
            if self.config.feature_indices is not None:
                x = x[:, :, :, :, list(self.config.feature_indices)]
            # (N, h, G1, G2, f) -> channels-first (N, f, h, G1, G2)
            x = ops.transpose(x, (0, 4, 1, 2, 3))
            with tracing.span("bikecap.historical_capsules"):
                historical_capsules = self.historical(x)
            with tracing.span("bikecap.routing"):
                future_capsules = self.future(historical_capsules)
            with tracing.span("bikecap.decoder"):
                return self.decoder(future_capsules)

    def predict(self, x: np.ndarray, batch_size: int = 32) -> np.ndarray:
        """Inference helper: batched forward without autograd graphs."""
        from repro.nn import config as nn_config

        self.eval()
        outputs = []
        with nn_config.no_grad():
            for start in range(0, len(x), batch_size):
                outputs.append(self.forward(Tensor(x[start : start + batch_size])).data)
        self.train()
        return np.concatenate(outputs, axis=0)

    @property
    def coupling_coefficients(self) -> Optional[np.ndarray]:
        """Spatial-temporal connections learned by the last forward pass.

        Shape ``(N, S, p, G1, G2)``: how strongly historical capsule ``s``
        contributes to each future slot at each grid — the quantity the
        paper interprets as upstream→downstream propagation strength.
        """
        return self.future.last_coupling
