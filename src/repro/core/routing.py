"""Spatial-temporal routing between historical and future capsules.

Implements Sec. III-D of the paper:

1. The historical capsule tensor ``Φ^l`` is reshaped so that every
   historical capsule occupies ``n^l`` consecutive positions along the depth
   axis, and a 3-D convolution with stride ``(n^l, 1, 1)`` produces, for
   *each* historical capsule ``s`` independently, its prediction ("vote")
   for every future time slot — ``p × n^{l+1}`` output channels.
2. Routing logits ``B_s ∈ R^{(G1, G2, p)}`` start at zero; coupling
   coefficients are a 3-D softmax *jointly over grid cells and future time
   slots* (Eq. 4), so each historical capsule distributes one unit of
   contribution across space *and* prediction steps — this is what makes the
   routing spatial-temporal.
3. Votes are combined per future slot, squashed (Eq. 3), and the logits are
   refined by the agreement ``⟨V_s, Ŝ⟩``.

Because every future slot is reconstructed from *all* historical capsules
independently — never from a previously-predicted slot — multi-step errors
do not accumulate the way they do in autoregressive baselines (paper Fig. 2).

Routing iterations run detached (plain numpy); gradients flow through the
vote tensor and the final weighted combination, as in the reference capsule
implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import fusion, ops
from repro.nn.layers.base import Module
from repro.nn.layers.conv import Conv2D
from repro.nn.tensor import Tensor
from repro.core.squash import squash
from repro.obs import metrics as obs_metrics
from repro.obs import runlog, tracing

_EPSILON = 1e-9


def softmax_3d(logits: np.ndarray, axes=(-3, -2, -1)) -> np.ndarray:
    """Numerically-stable softmax jointly normalized over several axes (Eq. 4)."""
    shifted = logits - logits.max(axis=axes, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axes, keepdims=True)


def squash_np(tensor: np.ndarray, axis: int = -1) -> np.ndarray:
    """Detached (numpy) squash used inside the routing iterations."""
    squared_norm = (tensor**2).sum(axis=axis, keepdims=True)
    norm = np.sqrt(squared_norm + _EPSILON)
    return tensor * squared_norm / ((1.0 + squared_norm) * norm)


class SpatialTemporalRouting(Module):
    """Route historical capsules to future capsules with dynamic agreement.

    Input: ``(N, c_hist, n_in, h, G1, G2)`` historical capsule tensor.
    Output: ``(N, p, n_out, G1, G2)`` — one ``n_out``-dim capsule per future
    time slot per grid cell.
    """

    def __init__(
        self,
        in_capsule_dim: int,
        out_capsule_dim: int,
        horizon: int,
        iterations: int = 3,
        kernel_size: int = 3,
        separate_temporal_capsules: bool = False,
        rng=None,
    ):
        super().__init__()
        if iterations < 1:
            raise ValueError(f"routing needs at least 1 iteration, got {iterations}")
        self.in_capsule_dim = in_capsule_dim
        self.out_capsule_dim = out_capsule_dim
        self.horizon = horizon
        self.iterations = iterations
        self.separate_temporal_capsules = separate_temporal_capsules
        # The paper's vote transform is a 3-D convolution with kernel depth
        # n^l and stride (n^l, 1, 1) over capsules stacked along the depth
        # axis. Because the stride equals the kernel depth, the depth blocks
        # never overlap — the operation is exactly a 2-D convolution with
        # n^l input channels applied to each historical capsule's slice,
        # which is how we implement it (identical parameters, much faster).
        if separate_temporal_capsules:
            # The stability extension the paper sketches in Sec. V-A:
            # a *separate* vote transform per future time slot, so one
            # slot's representation is not biased by its neighbours'
            # variance. More parameters, lower run-to-run variance.
            from repro.nn.layers.base import ModuleList

            self.vote_convs = ModuleList(
                [
                    Conv2D(in_capsule_dim, out_capsule_dim, kernel_size, padding="same", rng=rng)
                    for _ in range(horizon)
                ]
            )
            self.vote_conv = None
        else:
            # One conv produces votes for every (future slot, out-capsule
            # dim) pair — each historical capsule contributes one
            # independent vote per future slot.
            self.vote_conv = Conv2D(
                in_capsule_dim, horizon * out_capsule_dim, kernel_size, padding="same", rng=rng
            )
            self.vote_convs = None
        self.last_coupling: Optional[np.ndarray] = None

    def compute_votes(self, phi) -> Tensor:
        """Vote tensor ``V``: ``(N, p, n_out, S, G1, G2)`` with ``S = c_hist*h``."""
        batch, c_hist, n_in, history, g1, g2 = phi.shape
        if n_in != self.in_capsule_dim:
            raise ValueError(f"expected capsule dim {self.in_capsule_dim}, got {n_in}")
        count = c_hist * history
        # Capsule s = (c, t) becomes one batch slice with its n_in components
        # as 2-D channels — the non-overlapping depth blocks of the paper's
        # strided 3-D convolution.
        stacked = ops.transpose(phi, (0, 1, 3, 2, 4, 5))  # (N, c, h, n_in, G1, G2)
        stacked = ops.reshape(stacked, (batch * count, n_in, g1, g2))
        if self.vote_conv is not None:
            votes = self.vote_conv(stacked)  # (N*S, p*n_out, G1, G2)
            votes = ops.reshape(
                votes, (batch, count, self.horizon, self.out_capsule_dim, g1, g2)
            )
            return ops.transpose(votes, (0, 2, 3, 1, 4, 5))
        per_step = [conv(stacked) for conv in self.vote_convs]  # each (N*S, n_out, G1, G2)
        votes = ops.stack(per_step, axis=1)  # (N*S, p, n_out, G1, G2)
        votes = ops.reshape(votes, (batch, count, self.horizon, self.out_capsule_dim, g1, g2))
        return ops.transpose(votes, (0, 2, 3, 1, 4, 5))

    def forward(self, phi) -> Tensor:
        with tracing.span("routing.forward"):
            with tracing.span("routing.votes"):
                votes = self.compute_votes(phi)
            batch, horizon, n_out, count, g1, g2 = votes.shape
            votes_np = votes.data

            # Routing logits start at zero, so the first coupling is exactly
            # the uniform softmax — materialize it directly instead of
            # building and softmaxing a full zeros tensor, and accumulate
            # logits from the first agreement onward.
            def _emit(iteration: int, agreement: np.ndarray) -> None:
                if runlog.active():
                    runlog.emit(
                        "routing_iter",
                        iteration=iteration + 1,
                        iterations=self.iterations,
                        agreement_mean=float(agreement.mean()),
                        agreement_abs_mean=float(np.abs(agreement).mean()),
                    )

            with tracing.span("routing.iterations"):
                fused_iters = fusion.routing_iterations(
                    votes_np, self.iterations, emit=_emit, epsilon=_EPSILON
                )
            if fused_iters is not None:
                coupling, last_agreement = fused_iters
            else:
                logits = None
                coupling = np.full(
                    (batch, count, horizon, g1, g2),
                    1.0 / (horizon * g1 * g2),
                    dtype=votes_np.dtype,
                )
                last_agreement = None
                with tracing.span("routing.iterations"):
                    for iteration in range(self.iterations - 1):
                        # (N, s, p, G1, G2) -> broadcastable against V (N, p, n_out, s, G1, G2).
                        # Broadcast-multiply-sum beats the equivalent einsum here
                        # (measured): the temp is small enough to stay cheap.
                        weights = np.expand_dims(coupling.transpose(0, 2, 1, 3, 4), axis=2)
                        combined = (votes_np * weights).sum(axis=3)  # (N, p, n_out, G1, G2)
                        squashed = squash_np(combined, axis=2)
                        # Agreement: dot product between each vote and the combined
                        # capsule. Plain (unoptimized) einsum: at routing sizes the
                        # direct C loop beats any precomputed contraction path,
                        # which pays for tensordot reshapes it can never amortize.
                        agreement = np.einsum("npdsxy,npdxy->nspxy", votes_np, squashed)
                        logits = agreement if logits is None else logits + agreement
                        coupling = softmax_3d(logits)
                        last_agreement = agreement
                        _emit(iteration, agreement)

            obs_metrics.counter("routing_forward_total").inc()
            obs_metrics.gauge("routing_iterations").set(self.iterations)
            if last_agreement is not None:
                # How strongly votes agree with the consensus capsule — the
                # convergence signal of the dynamic routing (Sec. III-D).
                obs_metrics.gauge("routing_agreement_mean").set(float(last_agreement.mean()))
                obs_metrics.histogram("routing_agreement_abs_mean").observe(
                    float(np.abs(last_agreement).mean())
                )

            self.last_coupling = coupling
            weights_np = np.expand_dims(coupling.transpose(0, 2, 1, 3, 4), axis=2)
            fused_out = fusion.fused_weighted_combine_squash(
                votes, weights_np, sum_axis=3, squash_axis=2, epsilon=_EPSILON
            )
            if fused_out is not None:
                return fused_out
            weights = Tensor(weights_np)
            combined = ops.sum(ops.mul(votes, weights), axis=3)
            return squash(combined, axis=2)
