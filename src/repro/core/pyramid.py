"""Pyramid convolution (paper Sec. II-A and III-C).

The pyramid kernel stacks per-time-slot spatial kernels whose extent grows
the further back in time they look: 1×1 at the current slot ``t``, 3×3 at
``t−1``, …, ``(2k−1)×(2k−1)`` at ``t−k+1``. Passengers can travel farther in
more time, so the receptive field widens along the flow-propagation
direction while *uncorrelated* grids outside the pyramid are excluded.

Implementation: a dense ``Conv3D`` whose kernel is gated by a fixed binary
pyramid mask (masked weights receive zero gradient), with *causal* temporal
padding — output slot ``t`` only sees slots ``t−k+1 … t`` — and symmetric
'same' spatial padding.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.conv import Conv3D


def pyramid_mask(size: int) -> np.ndarray:
    """Binary mask of shape ``(size, 2*size-1, 2*size-1)``.

    Index ``d`` along the first (temporal) axis corresponds to time offset
    ``-(size-1-d)``; the newest slice (``d = size-1``) is the 1×1 apex and
    the oldest (``d = 0``) the full base.
    """
    if size < 1:
        raise ValueError(f"pyramid size must be >= 1, got {size}")
    spatial = 2 * size - 1
    center = size - 1
    mask = np.zeros((size, spatial, spatial))
    for d in range(size):
        # Offset into the past: the apex (d = size-1) allows radius 0,
        # one slot back allows radius 1, and so on.
        radius = size - 1 - d
        mask[d, center - radius : center + radius + 1, center - radius : center + radius + 1] = 1.0
    return mask


def pyramid_cell_count(size: int) -> int:
    """Number of active cells in the pyramid kernel: sum of odd squares."""
    return sum((2 * r + 1) ** 2 for r in range(size))


class PyramidConv3D(Conv3D):
    """3-D convolution with a pyramid-masked kernel and causal time padding.

    Input and output are ``(N, C, h, G1, G2)``; the time length ``h`` is
    preserved (causal left-padding of ``size-1``), as is the spatial size.
    """

    def __init__(self, in_channels: int, out_channels: int, size: int, bias: bool = True, rng=None):
        spatial = 2 * size - 1
        super().__init__(
            in_channels,
            out_channels,
            kernel_size=(size, spatial, spatial),
            stride=1,
            padding=((size - 1, 0), (size - 1, size - 1), (size - 1, size - 1)),
            bias=bias,
            weight_mask=pyramid_mask(size),
            rng=rng,
        )
        self.size = size
