"""Output decoders (paper Sec. III-E).

``Decoder3D`` is the paper's decoder: two 3-D *deconvolution* layers that
exploit similar bike-demand patterns in neighbouring grids and adjacent time
slots. ``ReshapeDecoder`` is the BikeCap-3D ablation's replacement: a
per-grid, per-slot map on the capsule vector alone (1×1×1 kernels), which
treats every grid cell in isolation.
"""

from __future__ import annotations

from repro.nn import ops
from repro.nn.layers.base import Module
from repro.nn.layers.common import Activation
from repro.nn.layers.conv import Conv3D, ConvTranspose3D


class Decoder3D(Module):
    """Two 3-D deconvolution layers mapping future capsules to demand maps.

    Input ``(N, p, n_cap, G1, G2)`` → output ``(N, p, G1, G2)``.
    """

    def __init__(self, capsule_dim: int, hidden_channels: int = 8, rng=None):
        super().__init__()
        self.deconv1 = ConvTranspose3D(capsule_dim, hidden_channels, 3, stride=1, padding=1, rng=rng)
        self.activation = Activation("relu")
        self.deconv2 = ConvTranspose3D(hidden_channels, 1, 3, stride=1, padding=1, rng=rng)

    def forward(self, capsules):
        # (N, p, n, G1, G2) -> channels-first (N, n, p, G1, G2)
        hidden = ops.transpose(capsules, (0, 2, 1, 3, 4))
        hidden = self.activation(self.deconv1(hidden))
        out = self.deconv2(hidden)  # (N, 1, p, G1, G2)
        return ops.squeeze(out, 1)


class ReshapeDecoder(Module):
    """Pointwise decoder: each capsule vector maps to its own grid's demand.

    Uses 1×1×1 convolutions, so no information is shared between
    neighbouring grids or adjacent time slots — the contrast the BikeCap-3D
    ablation is designed to expose.
    """

    def __init__(self, capsule_dim: int, hidden_channels: int = 8, rng=None):
        super().__init__()
        self.dense1 = Conv3D(capsule_dim, hidden_channels, 1, rng=rng)
        self.activation = Activation("relu")
        self.dense2 = Conv3D(hidden_channels, 1, 1, rng=rng)

    def forward(self, capsules):
        hidden = ops.transpose(capsules, (0, 2, 1, 3, 4))
        hidden = self.activation(self.dense1(hidden))
        out = self.dense2(hidden)
        return ops.squeeze(out, 1)
