"""Ablation variants of BikeCAP (paper Sec. IV-E2).

The paper's naming is subtractive: ``BikeCap-X`` means "BikeCAP *without*
component X".

- **BikeCap-Sub** — no subway (upstream) data: only downstream channels.
- **BikeCap-Pyra** — pyramid convolution replaced by a standard convolution.
- **BikeCap-3D** — 3-D deconvolution decoder replaced by a reshape-based
  (per-grid pointwise) decoder.
- **BikeCap-3D-Pyra** — both replacements: essentially a simplified DeepCaps
  (2-D-style convolution + 3-D routing + reshape decoder).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.core.model import BikeCAP, BikeCAPConfig

# Channel convention established by repro.data.aggregation.FEATURE_NAMES:
# 0=bike pick-up, 1=bike drop-off, 2=subway inbound, 3=subway outbound.
DOWNSTREAM_FEATURES: Sequence[int] = (0, 1)


def make_bikecap(config: BikeCAPConfig) -> BikeCAP:
    """The full model."""
    return BikeCAP(config)


def make_bikecap_sub(config: BikeCAPConfig) -> BikeCAP:
    """BikeCap-Sub: trained with bike data only (no upstream consolidation)."""
    downstream = tuple(i for i in DOWNSTREAM_FEATURES if i < config.features)
    return BikeCAP(dataclasses.replace(config, feature_indices=downstream))


def make_bikecap_pyra(config: BikeCAPConfig) -> BikeCAP:
    """BikeCap-Pyra: standard convolution instead of the pyramid kernel."""
    return BikeCAP(dataclasses.replace(config, use_pyramid=False))


def make_bikecap_3d(config: BikeCAPConfig) -> BikeCAP:
    """BikeCap-3D: reshape-based decoder instead of 3-D deconvolution."""
    return BikeCAP(dataclasses.replace(config, use_3d_decoder=False))


def make_bikecap_3d_pyra(config: BikeCAPConfig) -> BikeCAP:
    """BikeCap-3D-Pyra: simplified DeepCaps-style architecture."""
    return BikeCAP(
        dataclasses.replace(config, use_pyramid=False, use_3d_decoder=False)
    )


VARIANTS: Dict[str, callable] = {
    "BikeCAP": make_bikecap,
    "BikeCap-Sub": make_bikecap_sub,
    "BikeCap-Pyra": make_bikecap_pyra,
    "BikeCap-3D": make_bikecap_3d,
    "BikeCap-3D-Pyra": make_bikecap_3d_pyra,
}


def make_variant(name: str, config: BikeCAPConfig) -> BikeCAP:
    """Build an ablation variant by its paper name."""
    try:
        factory = VARIANTS[name]
    except KeyError:
        raise ValueError(f"unknown variant {name!r}; choose from {sorted(VARIANTS)}") from None
    return factory(config)
