"""The paper's primary contribution: the BikeCAP capsule network."""

from repro.core.capsules import FutureCapsules, HistoricalCapsules
from repro.core.decoder import Decoder3D, ReshapeDecoder
from repro.core.model import BikeCAP, BikeCAPConfig
from repro.core.pyramid import PyramidConv3D, pyramid_cell_count, pyramid_mask
from repro.core.routing import SpatialTemporalRouting, softmax_3d, squash_np
from repro.core.squash import capsule_length, squash
from repro.core.variants import (
    DOWNSTREAM_FEATURES,
    VARIANTS,
    make_bikecap,
    make_bikecap_3d,
    make_bikecap_3d_pyra,
    make_bikecap_pyra,
    make_bikecap_sub,
    make_variant,
)

__all__ = [
    "BikeCAP",
    "BikeCAPConfig",
    "DOWNSTREAM_FEATURES",
    "Decoder3D",
    "FutureCapsules",
    "HistoricalCapsules",
    "PyramidConv3D",
    "ReshapeDecoder",
    "SpatialTemporalRouting",
    "VARIANTS",
    "capsule_length",
    "make_bikecap",
    "make_bikecap_3d",
    "make_bikecap_3d_pyra",
    "make_bikecap_pyra",
    "make_bikecap_sub",
    "make_variant",
    "pyramid_cell_count",
    "pyramid_mask",
    "softmax_3d",
    "squash",
    "squash_np",
]
