"""Historical and future capsule layers (paper Sec. III-C/III-D)."""

from __future__ import annotations

from repro.nn import ops
from repro.nn.layers.base import Module
from repro.nn.layers.conv import Conv3D
from repro.core.pyramid import PyramidConv3D
from repro.core.routing import SpatialTemporalRouting
from repro.core.squash import squash


class HistoricalCapsules(Module):
    """Convert demand series into the capsule domain.

    Input ``(N, f, h, G1, G2)`` (channels-first demand features, f covers
    upstream *and* downstream systems); output
    ``(N, c_hist, n_l, h, G1, G2)`` — ``c_hist`` capsule types per (grid,
    historical slot), each a squashed ``n_l``-dim vector.

    ``use_pyramid=False`` swaps the pyramid convolution for a standard cube
    kernel of the same temporal depth — the BikeCap-Pyra ablation.
    """

    def __init__(
        self,
        in_features: int,
        capsule_channels: int,
        capsule_dim: int,
        pyramid_size: int,
        use_pyramid: bool = True,
        rng=None,
    ):
        super().__init__()
        self.capsule_channels = capsule_channels
        self.capsule_dim = capsule_dim
        self.use_pyramid = use_pyramid
        out_channels = capsule_channels * capsule_dim
        if use_pyramid:
            self.conv = PyramidConv3D(in_features, out_channels, pyramid_size, rng=rng)
        else:
            # Same temporal depth and causal padding, ordinary dense kernel
            # with a conventional 3x3 spatial extent.
            self.conv = Conv3D(
                in_features,
                out_channels,
                kernel_size=(pyramid_size, 3, 3),
                stride=1,
                padding=((pyramid_size - 1, 0), (1, 1), (1, 1)),
                rng=rng,
            )

    def forward(self, x):
        batch, _features, history, g1, g2 = x.shape
        features = self.conv(x)  # (N, c*n, h, G1, G2)
        features = ops.reshape(
            features, (batch, self.capsule_channels, self.capsule_dim, history, g1, g2)
        )
        return squash(features, axis=2)


class FutureCapsules(Module):
    """Reconstruct one capsule per future time slot via spatial-temporal routing."""

    def __init__(
        self,
        in_capsule_dim: int,
        out_capsule_dim: int,
        horizon: int,
        iterations: int = 3,
        separate_temporal_capsules: bool = False,
        rng=None,
    ):
        super().__init__()
        self.routing = SpatialTemporalRouting(
            in_capsule_dim,
            out_capsule_dim,
            horizon,
            iterations=iterations,
            separate_temporal_capsules=separate_temporal_capsules,
            rng=rng,
        )

    def forward(self, phi):
        return self.routing(phi)

    @property
    def last_coupling(self):
        """Coupling coefficients from the most recent forward pass."""
        return self.routing.last_coupling
