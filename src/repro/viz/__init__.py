"""Terminal-friendly visualizations (no plotting backend required)."""

from repro.viz.ascii import (
    HEAT_RAMP,
    SPARK_BLOCKS,
    coupling_panel,
    demand_panel,
    heatmap,
    side_by_side,
    sparkline,
)

__all__ = [
    "HEAT_RAMP",
    "SPARK_BLOCKS",
    "coupling_panel",
    "demand_panel",
    "heatmap",
    "side_by_side",
    "sparkline",
]
