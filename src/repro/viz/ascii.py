"""Terminal visualizations: demand heatmaps, sparklines, coupling maps.

Matplotlib is not available in this environment, so the repository renders
its figures as unicode text — good enough to *see* the spatial structure of
demand, forecasts and routing coefficients in a terminal or log file.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"
HEAT_RAMP = " .:-=+*#%@"


def sparkline(series, width: Optional[int] = None) -> str:
    """Render a 1-D series as a unicode sparkline.

    ``width`` (optional) downsamples by averaging into that many buckets.
    """
    series = np.asarray(series, dtype=float).ravel()
    if series.size == 0:
        return ""
    if width is not None and width < series.size:
        edges = np.linspace(0, series.size, width + 1).astype(int)
        series = np.array([series[a:b].mean() for a, b in zip(edges, edges[1:])])
    top = series.max()
    if top <= 0:
        return " " * series.size
    levels = np.minimum(
        (series / top * (len(SPARK_BLOCKS) - 1)).astype(int), len(SPARK_BLOCKS) - 1
    )
    return "".join(SPARK_BLOCKS[level] for level in levels)


def heatmap(
    grid,
    ramp: str = HEAT_RAMP,
    vmax: Optional[float] = None,
) -> str:
    """Render a 2-D array as an ASCII heatmap (one char per cell)."""
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D array, got shape {grid.shape}")
    top = vmax if vmax is not None else grid.max()
    if top <= 0:
        top = 1.0
    levels = np.clip((grid / top * (len(ramp) - 1)).astype(int), 0, len(ramp) - 1)
    return "\n".join("".join(ramp[level] for level in row) for row in levels)


def side_by_side(blocks: Sequence[str], titles: Sequence[str], gap: int = 3) -> str:
    """Lay out multi-line text blocks horizontally with titles."""
    if len(blocks) != len(titles):
        raise ValueError("blocks and titles must have equal length")
    split_blocks = [block.splitlines() for block in blocks]
    widths = [
        max([len(title)] + [len(line) for line in lines])
        for lines, title in zip(split_blocks, titles)
    ]
    height = max(len(lines) for lines in split_blocks)
    rows = ["".join(title.ljust(width + gap) for title, width in zip(titles, widths))]
    for row_index in range(height):
        cells = []
        for lines, width in zip(split_blocks, widths):
            line = lines[row_index] if row_index < len(lines) else ""
            cells.append(line.ljust(width + gap))
        rows.append("".join(cells))
    return "\n".join(rows)


def demand_panel(truth: np.ndarray, prediction: np.ndarray, step: int = 0) -> str:
    """Truth-vs-forecast heatmaps for one prediction step."""
    truth = np.asarray(truth, dtype=float)
    prediction = np.asarray(prediction, dtype=float)
    if truth.shape != prediction.shape:
        raise ValueError("truth and prediction shapes differ")
    vmax = max(truth[step].max(), prediction[step].max(), 1e-9)
    return side_by_side(
        [heatmap(truth[step], vmax=vmax), heatmap(prediction[step], vmax=vmax)],
        [f"truth t+{step + 1}", f"forecast t+{step + 1}"],
    )


def coupling_panel(coupling: np.ndarray, future_step: int = 0) -> str:
    """Average routing mass per grid cell for one future slot.

    ``coupling`` is the (N, S, p, G1, G2) tensor a BikeCAP forward exposes;
    the panel shows where, spatially, historical capsules concentrate their
    contribution for that future step.
    """
    coupling = np.asarray(coupling, dtype=float)
    if coupling.ndim != 5:
        raise ValueError(f"expected (N, S, p, G1, G2) coupling, got {coupling.shape}")
    mass = coupling[:, :, future_step].mean(axis=(0, 1))
    return heatmap(mass)
