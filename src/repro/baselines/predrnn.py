"""PredRNN baseline (Wang et al., NeurIPS 2017; paper Sec. IV-B).

Spatiotemporal LSTM cells with a shared memory ``M`` that zig-zags through
the layer stack: it rises through the layers within a time step and returns
from the top layer to the bottom layer of the next step, memorizing spatial
appearances and temporal variations in one pool.
"""

from __future__ import annotations

from repro.baselines.frame_models import FrameSequenceForecaster, FrameSequenceModel
from repro.nn import Conv2D, ModuleList, STLSTMCell, init
from repro.pipeline import seeding


class PredRNNModel(FrameSequenceModel):
    """Stacked ST-LSTM cells with zig-zag spatiotemporal memory."""

    def __init__(
        self,
        num_features: int,
        hidden_channels: int = 8,
        num_layers: int = 2,
        kernel_size: int = 3,
        rng=None,
    ):
        super().__init__()
        rng = init.default_rng(rng)
        cells = []
        for layer in range(num_layers):
            in_channels = num_features if layer == 0 else hidden_channels
            cells.append(STLSTMCell(in_channels, hidden_channels, kernel_size, rng=rng))
        self.cells = ModuleList(cells)
        self.head = Conv2D(hidden_channels, num_features, 1, rng=rng)

    def begin_state(self, batch, height, width):
        layer_states = [cell.initial_state(batch, height, width) for cell in self.cells]
        hidden = [(h, c) for h, c, _m in layer_states]
        memory = layer_states[0][2]  # the shared M starts at the bottom
        return {"hidden": hidden, "memory": memory}

    def step(self, frame, state):
        hidden = state["hidden"]
        memory = state["memory"]
        new_hidden = []
        current = frame
        for cell, (h, c) in zip(self.cells, hidden):
            h, c, memory = cell(current, h, c, memory)
            new_hidden.append((h, c))
            current = h
        # M returned by the top layer feeds the bottom layer next step.
        return self.head(current), {"hidden": new_hidden, "memory": memory}


class PredRNNForecaster(FrameSequenceForecaster):
    """PredRNN in the recursive multi-step protocol."""

    name = "PredRNN"

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        hidden_channels: int = 8,
        num_layers: int = 2,
        kernel_size: int = 3,
        lr: float = 1e-3,
        batch_size: int = 16,
        seed: int = 0,
    ):
        model = PredRNNModel(
            num_features,
            hidden_channels=hidden_channels,
            num_layers=num_layers,
            kernel_size=kernel_size,
            rng=seeding.rng(seed),
        )
        super().__init__(model, history, horizon, grid_shape, num_features, lr=lr, batch_size=batch_size, seed=seed)
