"""The paper's seven comparison models plus the BikeCAP adapter.

``make_forecaster`` builds any model in Table III by name with sensible
CPU-scale defaults; keyword overrides pass straight through.
"""

from typing import Dict

from repro.baselines.base import (
    Forecaster,
    RecursiveFrameForecaster,
    SupervisedForecaster,
    clip_normalized,
    training_targets_next_frame,
)
from repro.baselines.bikecap_adapter import BikeCAPForecaster
from repro.baselines.convlstm_model import ConvLSTMForecaster, ConvLSTMModel
from repro.baselines.frame_models import (
    FrameSequenceForecaster,
    FrameSequenceModel,
    next_frame_targets,
)
from repro.baselines.lstm_model import LSTMForecaster
from repro.baselines.naive import PersistenceForecaster, SeasonalAverageForecaster
from repro.baselines.predrnn import PredRNNForecaster, PredRNNModel
from repro.baselines.predrnn_pp import PredRNNPlusPlusForecaster, PredRNNPlusPlusModel
from repro.baselines.stgcn import STGCNForecaster, STGCNModel
from repro.baselines.stsgcn import STSGCNForecaster, STSGCNModel
from repro.baselines.xgboost_model import XGBoostForecaster

FORECASTERS: Dict[str, type] = {
    "XGBoost": XGBoostForecaster,
    "LSTM": LSTMForecaster,
    "convLSTM": ConvLSTMForecaster,
    "PredRNN": PredRNNForecaster,
    "PredRNN++": PredRNNPlusPlusForecaster,
    "STGCN": STGCNForecaster,
    "STSGCN": STSGCNForecaster,
    "BikeCAP": BikeCAPForecaster,
    # Sanity anchors beyond the paper's table:
    "Persistence": PersistenceForecaster,
    "SeasonalAverage": SeasonalAverageForecaster,
}


def make_forecaster(
    name: str,
    history: int,
    horizon: int,
    grid_shape,
    num_features: int,
    seed: int = 0,
    **overrides,
) -> Forecaster:
    """Instantiate a Table III model by its paper name."""
    try:
        cls = FORECASTERS[name]
    except KeyError:
        raise ValueError(f"unknown forecaster {name!r}; choose from {sorted(FORECASTERS)}") from None
    return cls(history, horizon, grid_shape, num_features, seed=seed, **overrides)


__all__ = [
    "BikeCAPForecaster",
    "ConvLSTMForecaster",
    "ConvLSTMModel",
    "FORECASTERS",
    "Forecaster",
    "FrameSequenceForecaster",
    "FrameSequenceModel",
    "LSTMForecaster",
    "PersistenceForecaster",
    "PredRNNForecaster",
    "PredRNNModel",
    "PredRNNPlusPlusForecaster",
    "PredRNNPlusPlusModel",
    "RecursiveFrameForecaster",
    "STGCNForecaster",
    "STGCNModel",
    "SeasonalAverageForecaster",
    "SupervisedForecaster",
    "STSGCNForecaster",
    "STSGCNModel",
    "XGBoostForecaster",
    "clip_normalized",
    "make_forecaster",
    "next_frame_targets",
    "training_targets_next_frame",
]
