"""LSTM baseline (paper Sec. IV-B).

The paper feeds the LSTM "a single series of demands in historical time
steps" per grid — a purely temporal model with no spatial context. We pool
all grids into one weight-shared sequence model: every sample is one grid's
``(h, F)`` history, the target its full feature vector at ``t+1``; the
recursive protocol extends it to multiple steps.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    RecursiveFrameForecaster,
    SupervisedForecaster,
    clip_normalized,
)
from repro.data.datasets import BikeDemandDataset
from repro.nn import LSTM, Linear, Module, init
from repro.pipeline import seeding


class _SequenceRegressor(Module):
    """LSTM encoder + linear head: last hidden state → next feature vector."""

    def __init__(self, num_features: int, hidden_size: int, num_layers: int, rng=None):
        super().__init__()
        rng = init.default_rng(rng)
        self.lstm = LSTM(num_features, hidden_size, num_layers=num_layers, rng=rng)
        self.head = Linear(hidden_size, num_features, rng=rng)

    def forward(self, x):
        outputs, _state = self.lstm(x)
        last = outputs[:, -1, :]
        return self.head(last)


class LSTMForecaster(SupervisedForecaster, RecursiveFrameForecaster):
    """Per-grid pooled LSTM rolled forward recursively."""

    name = "LSTM"

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        hidden_size: int = 32,
        num_layers: int = 1,
        lr: float = 1e-3,
        batch_size: int = 256,
        max_train_samples: int = 20000,
        seed: int = 0,
    ):
        model = _SequenceRegressor(
            num_features, hidden_size, num_layers, rng=seeding.rng(seed)
        )
        super().__init__(
            history,
            horizon,
            grid_shape,
            num_features,
            model=model,
            lr=lr,
            batch_size=batch_size,
            seed=seed,
        )
        self.max_train_samples = max_train_samples

    def _sequences(self, x: np.ndarray) -> np.ndarray:
        """(N, h, G1, G2, F) → (N*G1*G2, h, F)."""
        n, h, g1, g2, f = x.shape
        return x.transpose(0, 2, 3, 1, 4).reshape(n * g1 * g2, h, f)

    def training_arrays(self, dataset: BikeDemandDataset):
        x = dataset.split.train_x
        if len(x) < 2:
            raise ValueError("LSTM baseline needs at least 2 training windows")
        inputs = self._sequences(x[:-1])
        targets = x[1:, -1].reshape(len(inputs), self.num_features)
        if len(inputs) > self.max_train_samples:
            rng = seeding.rng(self.seed)
            keep = rng.choice(len(inputs), size=self.max_train_samples, replace=False)
            inputs, targets = inputs[keep], targets[keep]
        return inputs, targets, None, None

    def predict_next_frame(self, x: np.ndarray) -> np.ndarray:
        n, _h, g1, g2, f = x.shape
        frame = self.batched_forward(self._sequences(x)).reshape(n, g1, g2, f)
        return clip_normalized(frame)
