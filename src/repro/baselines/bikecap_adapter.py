"""BikeCAP (and its ablation variants) behind the Forecaster interface.

BikeCAP is a *direct* multi-step model: future capsules reconstruct every
future slot from the historical capsules independently, so no recursion —
and no accumulated error — is involved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import SupervisedForecaster
from repro.core.model import BikeCAP, BikeCAPConfig
from repro.core.variants import make_variant
from repro.data.datasets import BikeDemandDataset


class BikeCAPForecaster(SupervisedForecaster):
    """Trainable wrapper around a BikeCAP variant."""

    streams_supervised_pairs = True

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        variant: str = "BikeCAP",
        config: Optional[BikeCAPConfig] = None,
        lr: float = 1e-3,
        batch_size: int = 32,
        seed: int = 0,
        loss: str = "l1",
        **config_overrides,
    ):
        self.name = variant
        if config is None:
            config = BikeCAPConfig(
                grid=tuple(grid_shape),
                history=history,
                horizon=horizon,
                features=num_features,
                seed=seed,
                **config_overrides,
            )
        elif config_overrides:
            import dataclasses

            config = dataclasses.replace(config, **config_overrides)
        self.config = config
        model: BikeCAP = make_variant(variant, config)
        # Default follows Sec. IV-C (L1); Sec. III-E's squared-error decoder
        # objective is available as loss="mse" and is what the larger-scale
        # experiment profiles use (see EXPERIMENTS.md).
        super().__init__(
            history,
            horizon,
            grid_shape,
            num_features,
            model=model,
            lr=lr,
            batch_size=batch_size,
            loss=loss,
            seed=seed,
        )

    def training_arrays(self, dataset: BikeDemandDataset):
        split = dataset.split
        return split.train_x, split.train_y, split.val_x, split.val_y

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        return self.model.predict(x, batch_size=self.batch_size)
