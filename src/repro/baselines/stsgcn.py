"""STSGCN baseline (Song et al., AAAI 2020; paper Sec. IV-B).

Spatial-Temporal Synchronous GCN: a localized graph connects each node to
its spatial neighbours *and* to itself in the adjacent time slices, so one
graph convolution captures localized synchronous spatial-temporal
correlations. Sliding the 3-slice module over the window, then cropping the
middle slice, differentiates individual nodes at different time slots. The
output uses one small head per future step (direct multi-step).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedForecaster
from repro.data.datasets import BikeDemandDataset
from repro.graph import (
    DenseGraphConv,
    grid_adjacency,
    localized_spatial_temporal_adjacency,
)
from repro.nn import Linear, Module, ModuleList, init, ops
from repro.pipeline import seeding


def _random_walk_normalize(adjacency: np.ndarray) -> np.ndarray:
    """Row-normalized propagation matrix ``D^{-1}(A + I)``."""
    augmented = adjacency + np.eye(len(adjacency))
    degree = augmented.sum(axis=1, keepdims=True)
    return augmented / np.maximum(degree, 1e-12)


class STSGCModule(Module):
    """One synchronous module: GCN layers over a 3-slice localized graph,
    cropping back to the middle slice."""

    def __init__(self, adjacency: np.ndarray, channels: int, num_gcn_layers: int = 2, rng=None):
        super().__init__()
        localized = localized_spatial_temporal_adjacency(adjacency, steps=3)
        propagation = _random_walk_normalize(localized)
        self.nodes = adjacency.shape[0]
        layers = []
        for _ in range(num_gcn_layers):
            layers.append(DenseGraphConv(propagation, channels, channels, rng=rng))
        self.layers = ModuleList(layers)

    def forward(self, x):
        # x: (N, 3, V, C) -> (N, 3V, C)
        batch, steps, nodes, channels = x.shape
        stacked = ops.reshape(x, (batch, steps * nodes, channels))
        hidden = stacked
        for layer in self.layers:
            hidden = ops.relu(layer(hidden))
        # Crop the middle slice (the localized representation of slot t+1).
        return hidden[:, nodes : 2 * nodes, :]


class STSGCNModel(Module):
    """Input embedding → stacked synchronous modules → per-step heads."""

    def __init__(
        self,
        grid_shape,
        history: int,
        horizon: int,
        num_features: int,
        hidden_channels: int = 16,
        hops: int = 1,
        num_gcn_layers: int = 2,
        rng=None,
    ):
        super().__init__()
        if history < 3:
            raise ValueError(f"STSGCN needs history >= 3, got {history}")
        rng = init.default_rng(rng)
        self.grid_shape = tuple(grid_shape)
        self.horizon = horizon
        rows, cols = self.grid_shape
        adjacency = grid_adjacency(rows, cols, hops=hops)

        self.embed = Linear(num_features, hidden_channels, rng=rng)
        # Two stacked sweeps of the 3-slice module (when history allows).
        self.num_sweeps = 2 if history >= 5 else 1
        sweeps = []
        length = history
        for _ in range(self.num_sweeps):
            sweeps.append(STSGCModule(adjacency, hidden_channels, num_gcn_layers, rng=rng))
            length -= 2
        self.sweeps = ModuleList(sweeps)
        self.final_steps = length
        heads = []
        for _ in range(horizon):
            heads.append(Linear(self.final_steps * hidden_channels, 1, rng=rng))
        self.heads = ModuleList(heads)

    def forward(self, x):
        batch = x.shape[0]
        history = x.shape[1]
        rows, cols = self.grid_shape
        nodes = rows * cols
        x = ops.reshape(x, (batch, history, nodes, x.shape[4]))
        hidden = self.embed(x)  # (N, h, V, C)
        for sweep in self.sweeps:
            length = hidden.shape[1]
            slices = []
            for t in range(length - 2):
                window = hidden[:, t : t + 3]
                slices.append(sweep(window))
            hidden = ops.stack(slices, axis=1)  # (N, length-2, V, C)
        # (N, T', V, C) -> (N, V, T'*C)
        hidden = ops.transpose(hidden, (0, 2, 1, 3))
        hidden = ops.reshape(hidden, (batch, nodes, -1))
        steps = [head(hidden) for head in self.heads]  # each (N, V, 1)
        out = ops.concat(steps, axis=2)  # (N, V, p)
        out = ops.transpose(out, (0, 2, 1))
        return ops.reshape(out, (batch, self.horizon, rows, cols))


class STSGCNForecaster(SupervisedForecaster):
    """Direct multi-step STSGCN."""

    name = "STSGCN"
    streams_supervised_pairs = True

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        hidden_channels: int = 16,
        hops: int = 1,
        lr: float = 1e-3,
        batch_size: int = 32,
        seed: int = 0,
    ):
        model = STSGCNModel(
            grid_shape,
            history,
            horizon,
            num_features,
            hidden_channels=hidden_channels,
            hops=hops,
            rng=seeding.rng(seed),
        )
        super().__init__(
            history,
            horizon,
            grid_shape,
            num_features,
            model=model,
            lr=lr,
            batch_size=batch_size,
            seed=seed,
        )

    def training_arrays(self, dataset: BikeDemandDataset):
        split = dataset.split
        return split.train_x, split.train_y, split.val_x, split.val_y

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.batched_forward(self._check_input(x))
