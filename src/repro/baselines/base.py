"""Shared interface for all comparison models.

Every forecaster consumes normalized history windows ``(N, h, G1, G2, F)``
and produces normalized multi-step bike pick-up demand ``(N, p, G1, G2)``.

The paper's protocol (Sec. IV-B) distinguishes two families:

- *autoregressive* models (XGBoost, LSTM, convLSTM, PredRNN, PredRNN++)
  predict a single next step and are rolled forward recursively, feeding
  their own predictions back as inputs — the source of accumulated error;
- *direct* models (STGCN, STSGCN, BikeCAP) emit all ``p`` steps at once.

The roll-forward loop itself lives in :mod:`repro.pipeline.forecast` (one
implementation for every model and for the teacher-forcing diagnostics);
``RecursiveFrameForecaster`` binds it to a next-frame predictor.

:class:`SupervisedForecaster` is the shared trainer-backed skeleton: every
neural model plugs in a Module and a ``training_arrays`` hook and inherits
``fit`` — including full-state checkpoint/resume — and the batched no-grad
forward pass, instead of hand-rolling its own loop.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import BikeDemandDataset
from repro.nn import Trainer
from repro.nn import config as nn_config
from repro.nn.layers.base import Module
from repro.nn.tensor import Tensor
from repro.pipeline import forecast

# Canonical implementation lives in the pipeline's protocol module; kept
# here as a re-export because every baseline historically imports it from
# ``repro.baselines.base``.
clip_normalized = forecast.clip_normalized


class Forecaster(abc.ABC):
    """Abstract multi-step forecaster."""

    name: str = "forecaster"

    def __init__(self, history: int, horizon: int, grid_shape, num_features: int):
        self.history = history
        self.horizon = horizon
        self.grid_shape = tuple(grid_shape)
        self.num_features = num_features

    @abc.abstractmethod
    def fit(
        self,
        dataset: BikeDemandDataset,
        epochs: int = 10,
        verbose: bool = False,
        checkpoint_path: Optional[str] = None,
        resume_from: Optional[object] = None,
        observers: Optional[Sequence] = None,
    ) -> Dict:
        """Train on the dataset's train split; returns a history dict.

        ``checkpoint_path``/``resume_from`` enable full-state autosave and
        bit-exact resume for trainer-backed models (``resume_from`` takes a
        path or an in-memory ``TrainingCheckpoint``); ``observers`` are
        :class:`~repro.obs.observers.TrainingObserver` instances attached
        to the training loop (how ``repro.resilience`` watches a fit).
        Models without an iterative training loop accept and ignore all
        three.
        """

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Map ``(N, h, G1, G2, F)`` windows to ``(N, p, G1, G2)`` pick-ups."""

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        expected = (self.history,) + self.grid_shape + (self.num_features,)
        if x.shape[1:] != expected:
            raise ValueError(f"{self.name}: expected windows of shape (N, {expected}), got {x.shape}")
        return x


class SupervisedForecaster(Forecaster):
    """Forecaster backed by an autograd ``Module`` and the shared Trainer.

    Subclasses pass their model up and implement :meth:`training_arrays`;
    ``fit`` (checkpointable), and the batched no-grad forward are defined
    once here so every neural baseline trains through the identical loop.
    """

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        model: Module,
        lr: float = 1e-3,
        batch_size: int = 32,
        loss: str = "l1",
        optimizer: str = "adam",
        seed: int = 0,
    ):
        super().__init__(history, horizon, grid_shape, num_features)
        self.model = model
        self.batch_size = batch_size
        self.seed = seed
        self.trainer = Trainer(
            model, loss=loss, optimizer=optimizer, lr=lr, batch_size=batch_size, seed=seed
        )

    #: Direct models whose ``training_arrays`` are exactly the dataset's
    #: supervised split pairs can stream them from the window store instead
    #: (bit-identical batches; O(batch) window memory). Recursive/frame
    #: models derive shifted targets and keep the eager path.
    streams_supervised_pairs: bool = False

    @abc.abstractmethod
    def training_arrays(
        self, dataset: BikeDemandDataset
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """``(train_x, train_y, val_x, val_y)`` arrays for ``Trainer.fit``."""

    def training_source(self, dataset: BikeDemandDataset):
        """Store batch source for streamed epochs, or None for eager arrays.

        Streaming engages when the model trains on the plain supervised
        pairs (``streams_supervised_pairs``) *and* the dataset is
        store-backed and marked ``streaming`` — the trainer then pulls
        shuffled batches straight from the chunked store.
        """
        if not self.streams_supervised_pairs:
            return None
        if not getattr(dataset, "streaming", False) or getattr(dataset, "store", None) is None:
            return None
        return dataset.train_source()

    def fit(
        self,
        dataset: BikeDemandDataset,
        epochs: int = 10,
        verbose: bool = False,
        checkpoint_path: Optional[str] = None,
        resume_from: Optional[object] = None,
        observers: Optional[Sequence] = None,
    ) -> Dict:
        source = self.training_source(dataset)
        if source is not None:
            train_x, train_y = source, None
            val_x, val_y = dataset.val_view(), None
        else:
            train_x, train_y, val_x, val_y = self.training_arrays(dataset)
        history = self.trainer.fit(
            train_x,
            train_y,
            epochs=epochs,
            val_x=val_x,
            val_y=val_y,
            verbose=verbose,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
            observers=observers,
        )
        return history.as_dict()

    def batched_forward(self, inputs: np.ndarray, postprocess=None) -> np.ndarray:
        """No-grad batched model outputs, concatenated along the batch axis.

        ``postprocess`` maps each batch's raw output before concatenation
        (e.g. slicing the final frame of a sequence prediction).
        """
        was_training = self.model.training
        self.model.eval()
        outputs = []
        with nn_config.no_grad():
            for start in range(0, len(inputs), self.batch_size):
                out = self.model(Tensor(inputs[start : start + self.batch_size])).data
                outputs.append(postprocess(out) if postprocess is not None else out)
        self.model.train(was_training)
        return np.concatenate(outputs, axis=0)


class RecursiveFrameForecaster(Forecaster):
    """Autoregressive multi-step protocol over single-step frame predictors.

    Subclasses implement :meth:`predict_next_frame`, which maps a history
    window to the *entire* next feature frame ``(N, G1, G2, F)``. Multi-step
    prediction rolls it forward through
    :func:`repro.pipeline.forecast.recursive_forecast` — exactly the
    recursion the paper describes for its baselines, and exactly where
    their errors accumulate.
    """

    @abc.abstractmethod
    def predict_next_frame(self, x: np.ndarray) -> np.ndarray:
        """Predict the full feature frame at ``t+1`` from ``(N, h, G1, G2, F)``."""

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        return forecast.recursive_forecast(
            self.predict_next_frame, x, self.horizon, target_feature=self.target_feature
        )

    @property
    def target_feature(self) -> int:
        return 0  # bike pick-ups, by the FEATURE_NAMES convention


def training_targets_next_frame(dataset: BikeDemandDataset) -> np.ndarray:
    """Next-frame targets for single-step training: x shifted by one slot.

    For window ``x = [t-h+1 … t]`` the target frame is the full feature map
    at ``t+1``. We reconstruct it from the *next* window's last slot; the
    final window (which has no successor inside the split) is dropped by the
    caller.
    """
    x = dataset.split.train_x
    return x[1:, -1]
