"""Shared interface for all comparison models.

Every forecaster consumes normalized history windows ``(N, h, G1, G2, F)``
and produces normalized multi-step bike pick-up demand ``(N, p, G1, G2)``.

The paper's protocol (Sec. IV-B) distinguishes two families:

- *autoregressive* models (XGBoost, LSTM, convLSTM, PredRNN, PredRNN++)
  predict a single next step and are rolled forward recursively, feeding
  their own predictions back as inputs — the source of accumulated error;
- *direct* models (STGCN, STSGCN, BikeCAP) emit all ``p`` steps at once.

``RecursiveFrameForecaster`` implements the roll-forward loop for any model
that predicts the full next feature frame.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.data.datasets import BikeDemandDataset


class Forecaster(abc.ABC):
    """Abstract multi-step forecaster."""

    name: str = "forecaster"

    def __init__(self, history: int, horizon: int, grid_shape, num_features: int):
        self.history = history
        self.horizon = horizon
        self.grid_shape = tuple(grid_shape)
        self.num_features = num_features

    @abc.abstractmethod
    def fit(self, dataset: BikeDemandDataset, epochs: int = 10, verbose: bool = False) -> Dict:
        """Train on the dataset's train split; returns a history dict."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Map ``(N, h, G1, G2, F)`` windows to ``(N, p, G1, G2)`` pick-ups."""

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        expected = (self.history,) + self.grid_shape + (self.num_features,)
        if x.shape[1:] != expected:
            raise ValueError(f"{self.name}: expected windows of shape (N, {expected}), got {x.shape}")
        return x


class RecursiveFrameForecaster(Forecaster):
    """Autoregressive multi-step protocol over single-step frame predictors.

    Subclasses implement :meth:`predict_next_frame`, which maps a history
    window to the *entire* next feature frame ``(N, G1, G2, F)``. Multi-step
    prediction slides the window: drop the oldest slot, append the predicted
    frame, repeat — exactly the recursion the paper describes for its
    baselines, and exactly where their errors accumulate.
    """

    @abc.abstractmethod
    def predict_next_frame(self, x: np.ndarray) -> np.ndarray:
        """Predict the full feature frame at ``t+1`` from ``(N, h, G1, G2, F)``."""

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        window = x.copy()
        steps = []
        for _step in range(self.horizon):
            frame = self.predict_next_frame(window)
            steps.append(frame[..., self.target_feature])
            window = np.concatenate([window[:, 1:], frame[:, None]], axis=1)
        return np.stack(steps, axis=1)

    @property
    def target_feature(self) -> int:
        return 0  # bike pick-ups, by the FEATURE_NAMES convention


def training_targets_next_frame(dataset: BikeDemandDataset) -> np.ndarray:
    """Next-frame targets for single-step training: x shifted by one slot.

    For window ``x = [t-h+1 … t]`` the target frame is the full feature map
    at ``t+1``. We reconstruct it from the *next* window's last slot; the
    final window (which has no successor inside the split) is dropped by the
    caller.
    """
    x = dataset.split.train_x
    return x[1:, -1]


def clip_normalized(frame: np.ndarray) -> np.ndarray:
    """Clamp rolled-forward predictions to the normalized demand range."""
    return np.clip(frame, 0.0, 1.5)
