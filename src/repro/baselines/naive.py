"""Naive reference forecasters: persistence and seasonal (historical) average.

Not part of the paper's Table III, but standard sanity anchors for any
demand-forecasting repository: a learned model that cannot beat persistence
is not learning, and the seasonal average exposes how much of the signal is
pure diurnal periodicity.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.base import Forecaster
from repro.data.datasets import BikeDemandDataset


class PersistenceForecaster(Forecaster):
    """Repeat the last observed pick-up frame for every future slot."""

    name = "Persistence"

    def __init__(self, history, horizon, grid_shape, num_features, seed: int = 0):
        super().__init__(history, horizon, grid_shape, num_features)

    def fit(
        self,
        dataset: BikeDemandDataset,
        epochs: int = 0,
        verbose: bool = False,
        checkpoint_path: Optional[str] = None,
        resume_from: Optional[object] = None,
        observers: Optional[Sequence] = None,
    ) -> Dict:
        return {}

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        last = x[:, -1, :, :, 0]
        return np.repeat(last[:, None], self.horizon, axis=1)


class SeasonalAverageForecaster(Forecaster):
    """Predict the training-set average pick-up map for each slot-of-day.

    Captures the repeating diurnal pattern and nothing else. Requires the
    caller to provide the slot-of-day of each window's first future slot,
    which we recover from the window index under the standard chronological
    windowing (window ``i`` predicts slots ``i+h … i+h+p−1``).
    """

    name = "SeasonalAverage"

    def __init__(
        self,
        history,
        horizon,
        grid_shape,
        num_features,
        slots_per_day: int = 96,
        seed: int = 0,
    ):
        super().__init__(history, horizon, grid_shape, num_features)
        self.slots_per_day = slots_per_day
        self.profile: np.ndarray = np.zeros((slots_per_day,) + tuple(grid_shape))
        self._train_offset = 0

    def fit(
        self,
        dataset: BikeDemandDataset,
        epochs: int = 0,
        verbose: bool = False,
        checkpoint_path: Optional[str] = None,
        resume_from: Optional[object] = None,
        observers: Optional[Sequence] = None,
    ) -> Dict:
        y = dataset.split.train_y  # (N, p, G1, G2), window i starts at slot i+h
        totals = np.zeros((self.slots_per_day,) + tuple(self.grid_shape))
        counts = np.zeros(self.slots_per_day)
        for index in range(len(y)):
            for step in range(y.shape[1]):
                slot = (index + dataset.history + step) % self.slots_per_day
                totals[slot] += y[index, step]
                counts[slot] += 1
        safe = np.maximum(counts, 1)[:, None, None]
        self.profile = totals / safe
        self._train_offset = dataset.history
        return {"slots_seen": int((counts > 0).sum())}

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict from each window's *observed phase*.

        The window's slot-of-day is inferred by matching the mean activity
        level of its recent history against the learned profile; with the
        chronological test windows this equals aligning on the global
        phase, which we approximate by carrying a rolling counter.
        """
        x = self._check_input(x)
        predictions = np.empty((len(x), self.horizon) + tuple(self.grid_shape))
        for index in range(len(x)):
            slot0 = self._best_phase(x[index])
            for step in range(self.horizon):
                predictions[index, step] = self.profile[(slot0 + step) % self.slots_per_day]
        return predictions

    def _best_phase(self, window: np.ndarray) -> int:
        """Phase whose profile best matches the window's recent history."""
        history_maps = window[:, :, :, 0]  # (h, G1, G2)
        h = history_maps.shape[0]
        best_slot, best_error = 0, np.inf
        for candidate in range(self.slots_per_day):
            slots = [(candidate - h + offset) % self.slots_per_day for offset in range(h)]
            error = float(np.abs(self.profile[slots] - history_maps).sum())
            if error < best_error:
                best_slot, best_error = candidate, error
        return best_slot
