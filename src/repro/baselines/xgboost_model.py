"""XGBoost baseline (paper Sec. IV-B).

Per the paper: historical records from ``t−h`` to ``t`` are concatenated
*for each grid respectively* to predict that grid's next-slot demand; for
multi-step prediction, predicted outcomes are fed back recursively.

One gradient-boosted model per feature channel is trained on samples pooled
across all grids (each sample: one grid's own ``h×F`` history). Predicting
all channels lets the recursion rebuild a complete input window.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence

import numpy as np

_LOGGER = logging.getLogger(__name__)

from repro.baselines.base import RecursiveFrameForecaster, clip_normalized
from repro.boosting import GradientBoostedTrees
from repro.data.datasets import BikeDemandDataset
from repro.pipeline import seeding


class XGBoostForecaster(RecursiveFrameForecaster):
    """Boosted-tree frame predictor rolled forward recursively."""

    name = "XGBoost"

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        n_estimators: int = 40,
        max_depth: int = 4,
        learning_rate: float = 0.3,
        subsample: float = 0.8,
        max_train_samples: int = 20000,
        seed: int = 0,
    ):
        super().__init__(history, horizon, grid_shape, num_features)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.subsample = subsample
        self.max_train_samples = max_train_samples
        self.seed = seed
        self.models: List[GradientBoostedTrees] = []

    # ------------------------------------------------------------------
    def _per_grid_features(self, x: np.ndarray) -> np.ndarray:
        """(N, h, G1, G2, F) → (N*G1*G2, h*F): each grid's own history."""
        n, h, g1, g2, f = x.shape
        return x.transpose(0, 2, 3, 1, 4).reshape(n * g1 * g2, h * f)

    def fit(
        self,
        dataset: BikeDemandDataset,
        epochs: int = 10,
        verbose: bool = False,
        checkpoint_path: Optional[str] = None,
        resume_from: Optional[object] = None,
        observers: Optional[Sequence] = None,
    ) -> Dict:
        del epochs  # boosting rounds are fixed by n_estimators
        del checkpoint_path, resume_from, observers  # no iterative loop to checkpoint
        x = dataset.split.train_x
        if len(x) < 2:
            raise ValueError("XGBoost baseline needs at least 2 training windows")
        inputs = self._per_grid_features(x[:-1])
        target_frames = x[1:, -1]  # full feature frame at t+1
        n, g1, g2, f = target_frames.shape
        targets = target_frames.reshape(n * g1 * g2, f)

        rng = seeding.rng(self.seed)
        if len(inputs) > self.max_train_samples:
            keep = rng.choice(len(inputs), size=self.max_train_samples, replace=False)
            inputs, targets = inputs[keep], targets[keep]

        self.models = []
        train_errors = []
        for feature in range(self.num_features):
            model = GradientBoostedTrees(
                n_estimators=self.n_estimators,
                learning_rate=self.learning_rate,
                max_depth=self.max_depth,
                subsample=self.subsample,
                seed=self.seed + feature,
            )
            model.fit(inputs, targets[:, feature])
            error = float(np.abs(model.predict(inputs) - targets[:, feature]).mean())
            train_errors.append(error)
            if verbose:
                _LOGGER.info("XGBoost channel %s: train MAE %.4f", feature, error)
            self.models.append(model)
        return {"train_mae_per_channel": train_errors}

    def predict_next_frame(self, x: np.ndarray) -> np.ndarray:
        if not self.models:
            raise RuntimeError("XGBoost baseline is not fitted")
        n, _h, g1, g2, f = x.shape
        inputs = self._per_grid_features(x)
        frame = np.stack([model.predict(inputs) for model in self.models], axis=-1)
        return clip_normalized(frame.reshape(n, g1, g2, f))
