"""Shared machinery for frame-sequence baselines (convLSTM, PredRNN, ++).

These models consume windows frame-by-frame and emit a prediction of the
*next* frame at every step (teacher forcing during training). Multi-step
inference uses the recursive protocol from :mod:`repro.baselines.base`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.baselines.base import (
    RecursiveFrameForecaster,
    SupervisedForecaster,
    clip_normalized,
)
from repro.data.datasets import BikeDemandDataset
from repro.nn import Module, ops


class FrameSequenceModel(Module):
    """Base: step through frames, predicting the successor of each.

    ``forward`` maps ``(N, h, G1, G2, F)`` to ``(N, h, G1, G2, F)`` where
    output slot ``t`` is the model's prediction of frame ``t+1``.
    Subclasses implement :meth:`begin_state` and :meth:`step`.
    """

    @abc.abstractmethod
    def begin_state(self, batch: int, height: int, width: int):
        """Initial recurrent state."""

    @abc.abstractmethod
    def step(self, frame, state):
        """Consume one channels-first frame; return (prediction, new_state)."""

    def forward(self, x):
        batch, steps, height, width, _features = x.shape
        state = self.begin_state(batch, height, width)
        predictions = []
        for t in range(steps):
            frame = ops.transpose(x[:, t], (0, 3, 1, 2))  # (N, F, G1, G2)
            prediction, state = self.step(frame, state)
            predictions.append(ops.transpose(prediction, (0, 2, 3, 1)))
        return ops.stack(predictions, axis=1)


def next_frame_targets(x: np.ndarray) -> np.ndarray:
    """Per-step next-frame targets for windows ``x``.

    For window ``i`` the target at step ``t`` is frame ``t+1`` of the same
    window; the final step's target is the first frame of window ``i+1``'s
    tail — i.e. the true successor frame. The last window is dropped.
    """
    shifted_within = x[:-1, 1:]
    successor = x[1:, -1][:, None]
    return np.concatenate([shifted_within, successor], axis=1)


class FrameSequenceForecaster(SupervisedForecaster, RecursiveFrameForecaster):
    """Wrap a FrameSequenceModel in the recursive multi-step protocol."""

    def __init__(
        self,
        model: FrameSequenceModel,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        lr: float = 1e-3,
        batch_size: int = 16,
        seed: int = 0,
    ):
        super().__init__(
            history,
            horizon,
            grid_shape,
            num_features,
            model=model,
            lr=lr,
            batch_size=batch_size,
            seed=seed,
        )

    def training_arrays(self, dataset: BikeDemandDataset):
        x = dataset.split.train_x
        if len(x) < 2:
            raise ValueError(f"{self.name} needs at least 2 training windows")
        return x[:-1], next_frame_targets(x), None, None

    def predict_next_frame(self, x: np.ndarray) -> np.ndarray:
        # Each batch's final output slot is the model's prediction of the
        # frame following the window.
        frame = self.batched_forward(x, postprocess=lambda frames: frames[:, -1])
        return clip_normalized(frame)
