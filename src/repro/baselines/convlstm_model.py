"""convLSTM baseline (Shi et al., 2015; paper Sec. IV-B).

Convolutional gates capture spatial correlations; prediction remains
recursive across future slots, so errors accumulate with the horizon — the
behaviour Table III documents.
"""

from __future__ import annotations

from repro.baselines.frame_models import FrameSequenceForecaster, FrameSequenceModel
from repro.nn import Conv2D, ConvLSTM2DCell, ModuleList, init
from repro.pipeline import seeding


class ConvLSTMModel(FrameSequenceModel):
    """Stacked ConvLSTM cells with a 1×1 convolutional output head."""

    def __init__(
        self,
        num_features: int,
        hidden_channels: int = 8,
        num_layers: int = 2,
        kernel_size: int = 5,
        rng=None,
    ):
        super().__init__()
        rng = init.default_rng(rng)
        cells = []
        for layer in range(num_layers):
            in_channels = num_features if layer == 0 else hidden_channels
            cells.append(ConvLSTM2DCell(in_channels, hidden_channels, kernel_size, rng=rng))
        self.cells = ModuleList(cells)
        self.head = Conv2D(hidden_channels, num_features, 1, rng=rng)

    def begin_state(self, batch, height, width):
        return [cell.initial_state(batch, height, width) for cell in self.cells]

    def step(self, frame, state):
        new_state = []
        hidden = frame
        for cell, (h, c) in zip(self.cells, state):
            h, c = cell(hidden, (h, c))
            new_state.append((h, c))
            hidden = h
        return self.head(hidden), new_state


class ConvLSTMForecaster(FrameSequenceForecaster):
    """convLSTM in the recursive multi-step protocol.

    The paper uses kernel size 5, "considering the balance between
    performance and cost" — we default to the same.
    """

    name = "convLSTM"

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        hidden_channels: int = 8,
        num_layers: int = 2,
        kernel_size: int = 5,
        lr: float = 1e-3,
        batch_size: int = 16,
        seed: int = 0,
    ):
        model = ConvLSTMModel(
            num_features,
            hidden_channels=hidden_channels,
            num_layers=num_layers,
            kernel_size=kernel_size,
            rng=seeding.rng(seed),
        )
        super().__init__(model, history, horizon, grid_shape, num_features, lr=lr, batch_size=batch_size, seed=seed)
