"""PredRNN++ baseline (Wang et al., ICML 2018; paper Sec. IV-B).

Improves PredRNN with cascaded dual memories (Causal LSTM) and a Gradient
Highway Unit between the first two layers, addressing the deep-in-time
gradient dilemma.
"""

from __future__ import annotations

from repro.baselines.frame_models import FrameSequenceForecaster, FrameSequenceModel
from repro.nn import GHU, CausalLSTMCell, Conv2D, ModuleList, init
from repro.pipeline import seeding


class PredRNNPlusPlusModel(FrameSequenceModel):
    """Causal LSTM stack with a gradient highway after the first layer."""

    def __init__(
        self,
        num_features: int,
        hidden_channels: int = 8,
        num_layers: int = 2,
        kernel_size: int = 3,
        rng=None,
    ):
        super().__init__()
        if num_layers < 2:
            raise ValueError("PredRNN++ needs at least 2 layers (GHU sits between 1 and 2)")
        rng = init.default_rng(rng)
        cells = []
        for layer in range(num_layers):
            in_channels = num_features if layer == 0 else hidden_channels
            cells.append(CausalLSTMCell(in_channels, hidden_channels, kernel_size, rng=rng))
        self.cells = ModuleList(cells)
        self.ghu = GHU(hidden_channels, kernel_size, rng=rng)
        self.head = Conv2D(hidden_channels, num_features, 1, rng=rng)

    def begin_state(self, batch, height, width):
        layer_states = [cell.initial_state(batch, height, width) for cell in self.cells]
        hidden = [(h, c) for h, c, _m in layer_states]
        memory = layer_states[0][2]
        highway = self.ghu.initial_state(batch, height, width)
        return {"hidden": hidden, "memory": memory, "highway": highway}

    def step(self, frame, state):
        hidden = state["hidden"]
        memory = state["memory"]
        highway = state["highway"]
        new_hidden = []
        current = frame
        for index, (cell, (h, c)) in enumerate(zip(self.cells, hidden)):
            h, c, memory = cell(current, h, c, memory)
            new_hidden.append((h, c))
            current = h
            if index == 0:
                highway = self.ghu(current, highway)
                current = highway
        return self.head(current), {
            "hidden": new_hidden,
            "memory": memory,
            "highway": highway,
        }


class PredRNNPlusPlusForecaster(FrameSequenceForecaster):
    """PredRNN++ in the recursive multi-step protocol."""

    name = "PredRNN++"

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        hidden_channels: int = 8,
        num_layers: int = 2,
        kernel_size: int = 3,
        lr: float = 1e-3,
        batch_size: int = 16,
        seed: int = 0,
    ):
        model = PredRNNPlusPlusModel(
            num_features,
            hidden_channels=hidden_channels,
            num_layers=num_layers,
            kernel_size=kernel_size,
            rng=seeding.rng(seed),
        )
        super().__init__(model, history, horizon, grid_shape, num_features, lr=lr, batch_size=batch_size, seed=seed)
