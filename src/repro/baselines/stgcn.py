"""STGCN baseline (Yu et al., IJCAI 2018; paper Sec. IV-B).

Spatio-Temporal Graph Convolutional Network: sandwiched ST-Conv blocks of
gated temporal convolutions around a Chebyshev graph convolution. Grids
become nodes; grids within ``hops`` Chebyshev distance are connected (the
paper's h-hop relation matrix). The output head emits all ``p`` future
steps at once (direct multi-step) — which is why its error grows more
slowly with the horizon than the recursive models', but still degrades
because one shared module serves all periods.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SupervisedForecaster
from repro.data.datasets import BikeDemandDataset
from repro.graph import ChebGraphConv, grid_adjacency
from repro.nn import Conv2D, Linear, Module, init, ops
from repro.pipeline import seeding


class TemporalGatedConv(Module):
    """Gated 1-D temporal convolution (GLU) applied per node.

    Input/output layout ``(N, T, V, C)``; the time axis shrinks by
    ``kernel_size − 1`` (valid convolution).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 2, rng=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.out_channels = out_channels
        self.conv = Conv2D(in_channels, 2 * out_channels, (kernel_size, 1), rng=rng)

    def forward(self, x):
        # (N, T, V, C) -> (N, C, T, V)
        moved = ops.transpose(x, (0, 3, 1, 2))
        gates = self.conv(moved)
        value = gates[:, : self.out_channels]
        gate = gates[:, self.out_channels :]
        gated = ops.mul(value, ops.sigmoid(gate))
        return ops.transpose(gated, (0, 2, 3, 1))


class STConvBlock(Module):
    """Temporal gate → Chebyshev graph convolution → temporal gate."""

    def __init__(self, adjacency, in_channels, spatial_channels, out_channels, kt=2, cheb_order=3, rng=None):
        super().__init__()
        self.temporal1 = TemporalGatedConv(in_channels, spatial_channels, kt, rng=rng)
        self.spatial = ChebGraphConv(adjacency, spatial_channels, spatial_channels, order=cheb_order, rng=rng)
        self.temporal2 = TemporalGatedConv(spatial_channels, out_channels, kt, rng=rng)

    def forward(self, x):
        x = self.temporal1(x)
        x = ops.relu(self.spatial(x))
        return self.temporal2(x)


class STGCNModel(Module):
    """Blocks + a time-collapsing head producing all horizon steps at once."""

    def __init__(
        self,
        grid_shape,
        history: int,
        horizon: int,
        num_features: int,
        hidden_channels: int = 16,
        hops: int = 2,
        cheb_order: int = 3,
        kt: int = 2,
        rng=None,
    ):
        super().__init__()
        rng = init.default_rng(rng)
        self.grid_shape = tuple(grid_shape)
        self.horizon = horizon
        rows, cols = self.grid_shape
        adjacency = grid_adjacency(rows, cols, hops=hops)

        # Each block consumes 2*(kt-1) time steps; keep at least one left.
        per_block = 2 * (kt - 1)
        num_blocks = 2 if history - 2 * per_block >= 1 else 1
        remaining = history - num_blocks * per_block
        if remaining < 1:
            raise ValueError(
                f"history={history} too short for STGCN with kt={kt}"
            )
        blocks = []
        in_channels = num_features
        for _ in range(num_blocks):
            blocks.append(
                STConvBlock(adjacency, in_channels, hidden_channels, hidden_channels, kt=kt, cheb_order=cheb_order, rng=rng)
            )
            in_channels = hidden_channels
        from repro.nn import ModuleList

        self.blocks = ModuleList(blocks)
        self.collapse = TemporalGatedConv(hidden_channels, hidden_channels, remaining, rng=rng)
        self.head = Linear(hidden_channels, horizon, rng=rng)

    def forward(self, x):
        batch = x.shape[0]
        history = x.shape[1]
        rows, cols = self.grid_shape
        nodes = rows * cols
        # (N, h, G1, G2, F) -> (N, h, V, F)
        x = ops.reshape(x, (batch, history, nodes, x.shape[4]))
        for block in self.blocks:
            x = block(x)
        x = self.collapse(x)  # (N, 1, V, C)
        x = ops.squeeze(x, 1)
        out = self.head(x)  # (N, V, p)
        out = ops.transpose(out, (0, 2, 1))
        return ops.reshape(out, (batch, self.horizon, rows, cols))


class STGCNForecaster(SupervisedForecaster):
    """Direct multi-step STGCN."""

    name = "STGCN"
    streams_supervised_pairs = True

    def __init__(
        self,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        hidden_channels: int = 16,
        hops: int = 2,
        cheb_order: int = 3,
        lr: float = 1e-3,
        batch_size: int = 32,
        seed: int = 0,
    ):
        model = STGCNModel(
            grid_shape,
            history,
            horizon,
            num_features,
            hidden_channels=hidden_channels,
            hops=hops,
            cheb_order=cheb_order,
            rng=seeding.rng(seed),
        )
        super().__init__(
            history,
            horizon,
            grid_shape,
            num_features,
            model=model,
            lr=lr,
            batch_size=batch_size,
            seed=seed,
        )

    def training_arrays(self, dataset: BikeDemandDataset):
        split = dataset.split
        return split.train_x, split.train_y, split.val_x, split.val_y

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.batched_forward(self._check_input(x))
