"""Streaming ingestion: live slots → the shared window store → drift scoring.

Serving used to keep its own rolling raw-window state; now live aggregated
slots append to the *same* chunked :class:`repro.store.WindowStore` the
training dataflow uses. The pipeline tracks which supervised windows have
fully materialized (history *and* horizon present), so every completed
window can be scored against realized demand exactly once, and — with
``update_scaler=True`` — folds each new slot into the scaler's running
extrema (``partial_fit``), refreshing normalization incrementally for a
service that shares the store's scaler.

Lifecycle (see docs/DATAFLOW.md):

1. ``ingest(slots)`` appends raw slots; once ``history`` slots exist the
   service can answer (:meth:`forecast` / :meth:`current_window`);
2. each time a window's full horizon lands, ``ingest`` returns it as a
   :class:`ReadyWindow` (raw history + realized target demand) and — if a
   :class:`~repro.serve.monitor.DriftMonitor` is attached — feeds it
   through the monitor, closing the predict → realize → score loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import runlog
from repro.serve.monitor import DriftMonitor
from repro.serve.service import ForecastResponse, ForecastService
from repro.store import WindowStore


@dataclass(frozen=True)
class ReadyWindow:
    """A window whose full horizon has materialized in the store."""

    index: int  # window index within the store
    window: np.ndarray  # raw (history, G1, G2, F) model input
    actual: np.ndarray  # raw (horizon, G1, G2) realized target demand
    report: Optional[object] = None  # DriftReport when a monitor is attached


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one ``ingest`` call."""

    appended_slots: int
    ready: List[ReadyWindow] = field(default_factory=list)


class IngestionPipeline:
    """Append live slots to a window store and score completed windows.

    ``store`` should hold *raw* (denormalized) slots — the service applies
    its own normalization at predict time, so the store is typically built
    with ``normalize=False``. Pass ``scaler=service.scaler`` and
    ``update_scaler=True`` to refresh that service's normalization
    statistics incrementally as demand streams in.
    """

    def __init__(
        self,
        store: WindowStore,
        service: Optional[ForecastService] = None,
        monitor: Optional[DriftMonitor] = None,
        update_scaler: bool = False,
        label: str = "serve",
        controller=None,
    ):
        if service is not None:
            if (store.history, store.horizon) != (service.history, service.horizon):
                raise ValueError(
                    f"store geometry (h={store.history}, p={store.horizon}) does not "
                    f"match service (h={service.history}, p={service.horizon})"
                )
            if update_scaler and store.scaler is not service.scaler:
                raise ValueError(
                    "update_scaler=True requires the store and service to share "
                    "one scaler object, or the refreshed statistics never reach "
                    "the service"
                )
        self.store = store
        self.service = service
        self.monitor = monitor
        # An AdaptationController (duck-typed: anything with observe(ready))
        # sees every ReadyWindow after scoring — drift verdicts reach the
        # fine-tune trigger without the caller writing the loop by hand.
        self.controller = controller
        self.update_scaler = update_scaler
        self.label = label
        # Windows scored so far; everything below this index is final.
        self._scored = store.num_windows

    @property
    def num_scored(self) -> int:
        return self._scored

    def ingest(self, slots: np.ndarray) -> IngestReport:
        """Append ``(n, G1, G2, F)`` raw slots (or one bare slot).

        Returns the newly completed windows; with a monitor attached each
        one has already been predicted and scored against its realized
        demand (``report`` holds the drift verdict).
        """
        appended = self.store.extend(slots, update_scaler=self.update_scaler)
        obs_metrics.counter("serve_ingest_slots_total", service=self.label).inc(appended)
        ready: List[ReadyWindow] = []
        history, horizon = self.store.history, self.store.horizon
        target = self.store.target_feature
        for index in range(self._scored, self.store.num_windows):
            window = self.store.raw_slots(index, index + history)
            actual = self.store.raw_slots(index + history, index + history + horizon)[
                ..., target
            ]
            report = None
            if self.monitor is not None:
                try:
                    report = self.monitor.feed(window, actual)
                except Exception as error:  # noqa: BLE001 - isolate scoring
                    # One poisoned window must not wedge ingestion: the
                    # window stays ready (report=None) and later windows
                    # still get scored.
                    obs_metrics.counter(
                        "serve_ingest_monitor_errors_total", service=self.label
                    ).inc()
                    runlog.emit(
                        "ingest_monitor_error",
                        service=self.label,
                        window=index,
                        error=str(error),
                    )
            # Advance per window — not after the loop — so a monitor
            # exception mid-stream cannot re-score (and double-emit drift
            # events for) windows already handled on the next ingest call.
            self._scored = index + 1
            obs_metrics.counter("serve_ingest_windows_total", service=self.label).inc()
            completed = ReadyWindow(
                index=index, window=window, actual=actual, report=report
            )
            ready.append(completed)
            if self.controller is not None:
                try:
                    self.controller.observe(completed)
                except Exception as error:  # noqa: BLE001 - isolate triggers
                    obs_metrics.counter(
                        "serve_ingest_controller_errors_total", service=self.label
                    ).inc()
                    runlog.emit(
                        "ingest_controller_error",
                        service=self.label,
                        window=index,
                        error=str(error),
                    )
        return IngestReport(appended_slots=appended, ready=ready)

    def current_window(self) -> Optional[np.ndarray]:
        """The freshest raw history window, or None before warm-up."""
        return self.store.latest_raw_window()

    def forecast(self, deadline_seconds: Optional[float] = None) -> ForecastResponse:
        """Answer a forecast for the store's most recent history window."""
        if self.service is None:
            raise RuntimeError("IngestionPipeline.forecast needs a service")
        window = self.current_window()
        if window is None:
            raise RuntimeError(
                f"not enough slots ingested: have {self.store.num_slots}, "
                f"need {self.store.history}"
            )
        return self.service.predict_one(window, deadline_seconds=deadline_seconds)


__all__ = ["IngestReport", "IngestionPipeline", "ReadyWindow"]
