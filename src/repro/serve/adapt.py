"""Drift-triggered online adaptation: fine-tune, shadow-validate, hot-swap.

This module closes the loop that the rest of the serving stack leaves
open: :class:`~repro.serve.monitor.DriftMonitor` *detects* that the live
model's error distribution shifted, and :meth:`ForecastService.swap_primary`
can *flip* a new model in atomically — the :class:`AdaptationController`
here is the machinery in between. On a ``drift_detected`` verdict it:

1. **assembles** a fine-tune dataset from the freshest raw windows of the
   shared :class:`~repro.store.WindowStore` (the same store streaming
   ingestion appends to), normalized with a frozen snapshot of the
   serving scaler;
2. **warm-starts** a candidate from the live serving weights via
   :func:`repro.pipeline.loading.warm_start_forecaster` (the candidate's
   parameters are copies — fine-tuning never touches the serving model);
3. **fine-tunes** through :func:`repro.resilience.run_with_recovery`, so a
   diverging fine-tune rolls back and retries under the usual policy
   instead of taking the adaptation down on the first NaN;
4. **shadow-validates**: candidate and the pinned live primary are scored
   identically (predict → denormalize → clip → MAE against realized raw
   demand) on a held-out suffix of recent windows; no improvement → the
   candidate is rejected and the live model keeps serving;
5. **hot-swaps** the candidate in with compare-and-swap against the
   generation pinned at trigger time, so an adaptation that raced another
   swap fails closed (:class:`SwapConflict`) rather than clobbering it.

Every failure mode is typed (:class:`FineTuneDivergence`,
:class:`GateRejected`, :class:`SwapConflict`, :class:`AdaptationError`)
and every outcome leaves the original service answering — the candidate
only becomes visible at the final CAS flip. Triggers are rate-limited by
a cooldown that backs off exponentially on consecutive failures, and a
controller that exhausts ``max_retries`` consecutive failures suspends
itself until :meth:`AdaptationController.reset` (a human or a supervisor
acknowledging the pathology), so a persistently broken fine-tune cannot
spin the serving host.

Observability: ``adaptation_{triggered,swapped,rejected,failed}`` run-log
events, ``serve_adaptations_total{outcome=…}`` counters, gauges for the
serving generation and last shadow-gate improvement, and a ``serve.adapt``
trace span wrapping each attempt. :meth:`AdaptationController.status`
feeds the gateway's ``GET /adaptation`` endpoint.

Layering: this module reaches training machinery only through two seams —
``repro.pipeline.loading`` / ``repro.pipeline.spec`` and the
``repro.resilience`` package — enforced by ``scripts/check_layering.py``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

import numpy as np

from repro import faults
from repro.data.datasets import BikeDemandDataset
from repro.data.splits import Split
from repro.nn import engine
from repro.nn.divergence import DivergenceError
from repro.obs import metrics as obs_metrics
from repro.obs import runlog, tracing
from repro.pipeline.loading import warm_start_forecaster
from repro.pipeline.spec import RunSpec
from repro.resilience import RecoveryPolicy, run_with_recovery
from repro.serve.service import ForecastService, GenerationConflict
from repro.store import WindowStore


class AdaptationError(RuntimeError):
    """Base of the adaptation failure taxonomy; ``reason`` is the
    machine-readable tag carried into events, counters and ``status()``."""

    reason = "error"


class FineTuneDivergence(AdaptationError):
    """The fine-tune diverged and exhausted its recovery retries."""

    reason = "fine_tune_divergence"


class GateRejected(AdaptationError):
    """The candidate did not beat the live model on the shadow holdout."""

    reason = "gate_rejected"


class SwapConflict(AdaptationError):
    """The serving generation moved between trigger and swap (CAS lost)."""

    reason = "swap_conflict"


@dataclass(frozen=True)
class ShadowReport:
    """Outcome of scoring candidate vs. live model on the shadow holdout."""

    live_error: float  # live primary's raw-demand MAE on the holdout
    candidate_error: float  # candidate's raw-demand MAE on the same windows
    windows: int  # holdout size
    min_improvement: float  # fractional improvement the gate demanded
    passed: bool

    @property
    def improvement(self) -> float:
        """Fractional error reduction (positive = candidate is better)."""
        if self.live_error <= 0.0:
            return 0.0
        return 1.0 - self.candidate_error / self.live_error

    def as_dict(self) -> dict:
        return {
            "live_error": self.live_error,
            "candidate_error": self.candidate_error,
            "improvement": self.improvement,
            "windows": self.windows,
            "min_improvement": self.min_improvement,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class AdaptationPolicy:
    """Knobs of the fine-tune / gate / rate-limit machinery.

    ``min_improvement`` is the fractional error reduction the shadow gate
    demands; the default ``0.0`` still requires the candidate to be
    *strictly* better (ties and regressions are rejected — swapping in a
    model that is not an improvement only resets latency EWMAs and risks
    churn for nothing).
    """

    epochs: int = 2
    min_windows: int = 8  # refuse to fine-tune on fewer recent windows
    max_windows: int = 256  # freshest windows used (train + holdout)
    holdout_fraction: float = 0.25
    min_holdout: int = 2
    min_improvement: float = 0.0
    cooldown_seconds: float = 60.0
    max_retries: int = 2  # consecutive failures before suspension
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 3600.0
    lr: Optional[float] = None  # fine-tune LR override (None = spec's own)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)

    def __post_init__(self):
        if self.epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {self.epochs}")
        if self.min_windows < 2:
            raise ValueError(f"min_windows must be >= 2, got {self.min_windows}")
        if self.max_windows < self.min_windows:
            raise ValueError(
                f"max_windows ({self.max_windows}) must be >= min_windows "
                f"({self.min_windows})"
            )
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError(
                f"holdout_fraction must be in (0, 1), got {self.holdout_fraction}"
            )
        if self.min_holdout < 1:
            raise ValueError(f"min_holdout must be >= 1, got {self.min_holdout}")
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @classmethod
    def from_dict(cls, config: Optional[dict]) -> "AdaptationPolicy":
        """Build from a config mapping; unknown keys are rejected loudly.

        ``recovery`` may itself be a dict, forwarded to
        :meth:`RecoveryPolicy.from_dict`.
        """
        if not config:
            return cls()
        config = dict(config)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(config) - known)
        if unknown:
            raise ValueError(
                f"unknown AdaptationPolicy key(s) {unknown}; known: {sorted(known)}"
            )
        recovery = config.get("recovery")
        if isinstance(recovery, dict):
            config["recovery"] = RecoveryPolicy.from_dict(recovery)
        return cls(**config)


class AdaptationController:
    """Drives drift verdicts through fine-tune → shadow gate → hot-swap.

    ``store`` must be the *raw* (``normalize=False``) window store the
    ingestion pipeline appends to, with geometry matching the service;
    ``spec`` is the :class:`RunSpec` that describes the serving model (the
    candidate is rebuilt from it, then warm-started from the live
    weights). With ``background=True`` (the default) each adaptation runs
    on a daemon worker thread so serving and ingestion never block on a
    fine-tune; tests and the bench pass ``background=False`` for
    determinism. Hook the controller into an
    :class:`~repro.serve.ingest.IngestionPipeline` via its ``controller=``
    argument, or call :meth:`trigger` directly.
    """

    def __init__(
        self,
        service: ForecastService,
        store: WindowStore,
        spec: RunSpec,
        *,
        policy: Optional[AdaptationPolicy] = None,
        label: str = "service",
        background: bool = True,
        warm_batch_sizes=(1,),
        clock=time.monotonic,
    ):
        if store.normalize:
            raise ValueError(
                "AdaptationController needs a raw (normalize=False) store: "
                "fine-tune windows are normalized with a frozen snapshot of "
                "the serving scaler, not the store's"
            )
        if (store.history, store.horizon) != (service.history, service.horizon):
            raise ValueError(
                f"store geometry (h={store.history}, p={store.horizon}) does "
                f"not match service (h={service.history}, p={service.horizon})"
            )
        if store.target_feature != service.target_feature:
            raise ValueError(
                f"store target feature ({store.target_feature}) does not "
                f"match service ({service.target_feature})"
            )
        self.service = service
        self.store = store
        self.spec = spec
        self.policy = policy or AdaptationPolicy()
        self.label = label
        self.background = background
        self.warm_batch_sizes = tuple(warm_batch_sizes)
        self._clock = clock
        self._lock = threading.Lock()
        self._busy = False
        self._worker: Optional[threading.Thread] = None
        self._cooldown_until: float = float("-inf")
        self.consecutive_failures = 0
        self.triggered = 0
        self.swapped = 0
        self.rejected = 0
        self.failed = 0
        self.skips: Dict[str, int] = {}
        self.last_outcome: Optional[str] = None
        self.last_reason: Optional[str] = None
        self.last_shadow: Optional[ShadowReport] = None

    # ------------------------------------------------------------------
    # Triggering.
    def observe(self, ready) -> bool:
        """Ingestion hook: trigger on a :class:`ReadyWindow`'s drift verdict."""
        report = getattr(ready, "report", None)
        if report is None or not getattr(report, "drifted", False):
            return False
        return self.trigger(reason=getattr(report, "detector", None) or "drift")

    def trigger(self, reason: str = "manual") -> bool:
        """Start one adaptation attempt unless rate-limited or busy.

        Returns whether an attempt actually started; skips are counted by
        cause (``busy`` / ``cooldown`` / ``suspended``) rather than raising,
        because a drift stream naturally fires while an attempt is already
        running.
        """
        now = self._clock()
        with self._lock:
            if self._busy:
                return self._skip("busy")
            if self.consecutive_failures > self.policy.max_retries:
                return self._skip("suspended")
            if now < self._cooldown_until:
                return self._skip("cooldown")
            self._busy = True
        pinned = self.service.snapshot()
        self.triggered += 1
        obs_metrics.counter(
            "serve_adaptation_triggers_total", service=self.label
        ).inc()
        runlog.emit(
            "adaptation_triggered",
            service=self.label,
            reason=reason,
            generation=pinned.number,
            windows=self.store.num_windows,
        )
        if self.background:
            worker = threading.Thread(
                target=self._run,
                args=(reason, pinned),
                name=f"adapt-{self.label}",
                daemon=True,
            )
            self._worker = worker
            worker.start()
        else:
            self._run(reason, pinned)
        return True

    def _skip(self, cause: str) -> bool:
        self.skips[cause] = self.skips.get(cause, 0) + 1
        obs_metrics.counter(
            "serve_adaptation_skipped_total", service=self.label, cause=cause
        ).inc()
        return False

    def wait(self, timeout: Optional[float] = None) -> None:
        """Join the background worker, if one is running."""
        worker = self._worker
        if worker is not None:
            worker.join(timeout)

    def reset(self) -> None:
        """Clear the failure backoff / suspension (operator acknowledgement)."""
        with self._lock:
            self.consecutive_failures = 0
            self._cooldown_until = float("-inf")

    # ------------------------------------------------------------------
    # The attempt itself.
    def _run(self, reason: str, pinned) -> None:
        outcome, failure, shadow, generation = "swapped", None, None, None
        try:
            with tracing.span(
                "serve.adapt",
                service=self.label,
                reason=reason,
                generation=pinned.number,
            ):
                shadow, generation = self._attempt(pinned)
        except GateRejected as error:
            outcome, failure = "rejected", error
            shadow = self.last_shadow
        except AdaptationError as error:
            outcome, failure = "failed", error
        except GenerationConflict as error:
            outcome, failure = "failed", SwapConflict(str(error))
        except faults.SimulatedCrash as error:
            # An injected crash inside the swap critical section: the flip
            # never published, so the pinned generation is still serving.
            outcome, failure = "failed", AdaptationError(str(error))
            failure.reason = "swap_crash"
        except Exception as error:  # noqa: BLE001 - adaptation never kills serving
            outcome, failure = "failed", AdaptationError(str(error))
        finally:
            self._conclude(outcome, failure, shadow, generation, pinned)

    def _conclude(self, outcome, failure, shadow, generation, pinned) -> None:
        reason = failure.reason if failure is not None else None
        obs_metrics.counter(
            "serve_adaptations_total", service=self.label, outcome=outcome
        ).inc()
        if outcome == "swapped":
            self.swapped += 1
            obs_metrics.gauge(
                "serve_adaptation_generation", service=self.label
            ).set(float(generation))
            obs_metrics.gauge(
                "serve_adaptation_last_improvement", service=self.label
            ).set(shadow.improvement if shadow is not None else 0.0)
            runlog.emit(
                "adaptation_swapped",
                service=self.label,
                generation=generation,
                **(shadow.as_dict() if shadow is not None else {}),
            )
        elif outcome == "rejected":
            self.rejected += 1
            runlog.emit(
                "adaptation_rejected",
                service=self.label,
                generation=pinned.number,
                **(shadow.as_dict() if shadow is not None else {}),
            )
        else:
            self.failed += 1
            obs_metrics.counter(
                "serve_adaptation_failures_total", service=self.label, reason=reason
            ).inc()
            runlog.emit(
                "adaptation_failed",
                service=self.label,
                generation=pinned.number,
                reason=reason,
                error=str(failure),
            )
        with self._lock:
            self._busy = False
            if outcome == "swapped":
                self.consecutive_failures = 0
            else:
                self.consecutive_failures += 1
            delay = self.policy.cooldown_seconds
            if outcome != "swapped":
                delay *= self.policy.backoff_factor ** (self.consecutive_failures - 1)
            self._cooldown_until = self._clock() + min(
                delay, self.policy.max_backoff_seconds
            )
            self.last_outcome = outcome
            self.last_reason = reason

    def _attempt(self, pinned):
        """One full fine-tune → gate → swap pass against a pinned state."""
        dataset, holdout_x, holdout_y_raw, scaler = self._assemble(pinned)
        candidate = self._fine_tune(pinned, dataset)
        shadow = self._shadow_gate(pinned, candidate, holdout_x, holdout_y_raw, scaler)
        self.last_shadow = shadow
        if not shadow.passed:
            raise GateRejected(
                f"candidate error {shadow.candidate_error:.6g} vs live "
                f"{shadow.live_error:.6g} (improvement "
                f"{shadow.improvement:+.2%}, gate needs "
                f">{shadow.min_improvement:.2%}) on {shadow.windows} windows"
            )
        # Prime the candidate's execution plans *before* it is visible, so
        # the first post-swap batch does not pay plan compilation.
        engine.warmup(
            candidate.predict, self.service.window_shape, self.warm_batch_sizes
        )
        with tracing.span("serve.adapt.swap", generation=pinned.number):
            try:
                generation = self.service.swap_primary(
                    candidate, expected_generation=pinned.number
                )
            except GenerationConflict as error:
                raise SwapConflict(str(error)) from error
        return shadow, generation

    def _assemble(self, pinned):
        """Freshest raw windows → normalized train split + shadow holdout.

        Normalization uses a *frozen snapshot* of the pinned generation's
        scaler: streaming ingestion may ``partial_fit`` the live scaler
        concurrently, and the fine-tune must see one consistent set of
        statistics end to end.
        """
        policy = self.policy
        total = self.store.num_windows
        take = min(policy.max_windows, total)
        if take < policy.min_windows:
            raise AdaptationError(
                f"only {total} recent windows materialized; fine-tune needs "
                f"at least {policy.min_windows}"
            )
        holdout = max(policy.min_holdout, int(round(take * policy.holdout_fraction)))
        if take - holdout < 1:
            raise AdaptationError(
                f"{take} windows leave no training data after a holdout of "
                f"{holdout}"
            )
        scaler = type(pinned.scaler).from_state(pinned.scaler.state())
        x_raw, y_raw = self.store.windows(total - take, total)
        target = self.store.target_feature
        # Mirror the training dataflow exactly: scale, then clip at zero
        # (robust scalers map sub-minimum values negative; demand is not).
        x_norm = np.clip(scaler.transform(np.asarray(x_raw, dtype=float)), 0.0, None)
        y_norm = np.clip(
            scaler.transform(np.asarray(y_raw, dtype=float), feature=target), 0.0, None
        )
        split_at = take - holdout
        dataset = BikeDemandDataset(
            split=Split(
                train_x=x_norm[:split_at],
                train_y=y_norm[:split_at],
                val_x=x_norm[split_at:],
                val_y=y_norm[split_at:],
                test_x=x_norm[:0],
                test_y=y_norm[:0],
            ),
            scaler=scaler,
            grid_shape=self.service.grid_shape,
            history=self.service.history,
            horizon=self.service.horizon,
            target_feature=target,
        )
        return dataset, x_norm[split_at:], np.asarray(y_raw, dtype=float)[split_at:], scaler

    def _fine_tune(self, pinned, dataset):
        """Warm-start a candidate from the pinned weights and fine-tune it."""
        live = pinned.tiers[0].forecaster
        source_model = getattr(live, "model", None)
        if source_model is None:
            raise AdaptationError(
                f"primary tier {pinned.tiers[0].name!r} exposes no .model to "
                "warm-start from"
            )
        candidate = warm_start_forecaster(
            self.spec,
            grid_shape=self.service.grid_shape,
            num_features=self.service.num_features,
            history=self.service.history,
            horizon=self.service.horizon,
            source_model=source_model,
            lr=self.policy.lr,
        )

        def fit_once(resume_point, watchers):
            return candidate.fit(
                dataset,
                epochs=self.policy.epochs,
                verbose=False,
                resume_from=resume_point,
                observers=watchers,
            )

        with tracing.span("serve.adapt.fine_tune", epochs=self.policy.epochs):
            try:
                run_with_recovery(
                    candidate.trainer,
                    fit_once,
                    policy=self.policy.recovery,
                    model_label=f"{self.label}:adapt",
                )
            except DivergenceError as error:
                raise FineTuneDivergence(
                    f"fine-tune diverged beyond recovery: {error}"
                ) from error
        return candidate

    def _shadow_gate(self, pinned, candidate, holdout_x, holdout_y_raw, scaler):
        """Score candidate and live primary identically on the holdout.

        Both models see the same normalized windows; both predictions go
        through the same denormalize-and-clip the service applies, and are
        scored against the *raw* realized demand — so the comparison is in
        the units callers experience, not normalized space.
        """
        target = self.store.target_feature

        def score(forecaster) -> float:
            predicted = np.asarray(forecaster.predict(holdout_x))
            demand = scaler.inverse_transform(predicted, feature=target)
            demand = np.clip(demand, 0.0, None)
            return float(np.mean(np.abs(demand - holdout_y_raw)))

        with tracing.span("serve.adapt.shadow", windows=len(holdout_x)):
            live_error = score(pinned.tiers[0].forecaster)
            candidate_error = score(candidate)
        passed = candidate_error < live_error * (1.0 - self.policy.min_improvement)
        shadow = ShadowReport(
            live_error=live_error,
            candidate_error=candidate_error,
            windows=len(holdout_x),
            min_improvement=self.policy.min_improvement,
            passed=passed,
        )
        obs_metrics.gauge(
            "serve_adaptation_shadow_live_error", service=self.label
        ).set(live_error)
        obs_metrics.gauge(
            "serve_adaptation_shadow_candidate_error", service=self.label
        ).set(candidate_error)
        return shadow

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Snapshot for operators (the gateway's ``GET /adaptation``)."""
        with self._lock:
            busy = self._busy
            cooldown = max(0.0, self._cooldown_until - self._clock())
            suspended = self.consecutive_failures > self.policy.max_retries
        if busy:
            state = "adapting"
        elif suspended:
            state = "suspended"
        elif cooldown > 0:
            state = "cooldown"
        else:
            state = "idle"
        return {
            "service": self.label,
            "state": state,
            "generation": self.service.generation,
            "triggered": self.triggered,
            "swapped": self.swapped,
            "rejected": self.rejected,
            "failed": self.failed,
            "skips": dict(self.skips),
            "consecutive_failures": self.consecutive_failures,
            "cooldown_remaining_seconds": cooldown,
            "last_outcome": self.last_outcome,
            "last_reason": self.last_reason,
            "last_shadow": (
                self.last_shadow.as_dict() if self.last_shadow is not None else None
            ),
        }


__all__ = [
    "AdaptationController",
    "AdaptationError",
    "AdaptationPolicy",
    "FineTuneDivergence",
    "GateRejected",
    "ShadowReport",
    "SwapConflict",
]
