"""The forecast service: normalize → predict → denormalize, with tiers.

:class:`ForecastService` owns a fitted :class:`~repro.data.normalization.
MinMaxScaler` and an ordered chain of *tiers* — named forecasters from most
accurate to cheapest (e.g. ``BikeCAP`` → ``Persistence``). Requests carry
**raw** demand windows ``(h, G1, G2, F)`` in real counts; responses carry
raw multi-step demand ``(p, G1, G2)`` plus the name of the tier that
produced it, so a rebalancing consumer always gets *an* answer and always
knows how much to trust it.

Degradation semantics, per request:

- a tier that **raises** hands the request to the next tier (a batched
  failure is retried per window first, so one poisoned request cannot drag
  its whole micro-batch down a tier);
- a request whose **deadline** has already passed — or is predicted to pass,
  via a per-tier latency EWMA — skips straight past the expensive tiers;
- a tier whose answer lands **after** the deadline is treated as a miss:
  the request falls through to the cheaper tiers (which is what the caller
  would have observed anyway);
- the **final tier is the floor**: it always runs when reached, deadline or
  not, and is expected to be infallible (persistence is a pure numpy
  reshuffle). If the floor itself fails for some requests, the batch raises
  :class:`PartialBatchError` carrying every answer that *was* computed plus
  the per-request floor errors — one poisoned request never voids its
  healthy batch-mates (:meth:`~ForecastService.predict_one` unwraps the
  single underlying error).

Hot-swap semantics (the online-adaptation loop, docs/RESILIENCE.md):

The tier chain and scaler live together in one immutable, generation-
numbered serving state. ``predict_batch`` reads that state exactly once at
entry, so an in-flight batch finishes wholly on the generation it started
on — normalize, predict and denormalize never mix generations — and every
response carries the ``generation`` that answered it. ``swap_primary``
flips in a new primary (and optionally a new scaler) under a lock with
compare-and-swap semantics (``expected_generation`` mismatches raise
:class:`GenerationConflict` and change nothing); ``revert_primary``
restores the previous generation the same way. The swap consults
:func:`repro.faults.crash_hot_swap` inside the critical section *before*
publishing, so an injected crash provably leaves the old generation
serving.

Every answer increments ``serve_requests_total{tier=…}`` and observes
``serve_latency_seconds{tier=…}``; every tier skip increments
``serve_degradations_total{tier=…,reason=…}`` and emits a
``serve_degraded`` run-log event when a run log is open.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.data.normalization import MinMaxScaler
from repro.nn import engine
from repro.obs import metrics as obs_metrics
from repro.obs import runlog, tracing

# Degradation reasons recorded in metrics, run logs and responses.
REASON_ERROR = "error"
REASON_DEADLINE = "deadline"
REASON_PREDICTED_DEADLINE = "predicted_deadline"

# Weight of the newest observation in the per-tier latency EWMA.
_EWMA_ALPHA = 0.3


class PartialBatchError(RuntimeError):
    """The floor tier failed for *some* requests of a batch.

    ``responses`` aligns with the request batch and holds every
    :class:`ForecastResponse` that was computed (``None`` at the broken
    indices); ``errors`` maps each broken index to the exception its floor
    attempt raised. Batch callers (the :class:`~repro.serve.batching.
    MicroBatcher`) resolve the survivors and fail only the broken futures.
    """

    def __init__(self, responses, errors):
        self.responses: List[Optional["ForecastResponse"]] = list(responses)
        self.errors: Dict[int, Exception] = dict(errors)
        broken = ", ".join(str(index) for index in sorted(self.errors))
        first = next(iter(self.errors.values()))
        super().__init__(
            f"floor tier failed for request(s) [{broken}] of a batch of "
            f"{len(self.responses)}: {first}"
        )


class GenerationConflict(RuntimeError):
    """A compare-and-swap hot-swap lost the race: the serving generation
    moved between the caller pinning it and the swap taking the lock."""

    def __init__(self, expected: int, actual: int):
        self.expected = int(expected)
        self.actual = int(actual)
        super().__init__(
            f"serving generation moved: expected {expected}, now {actual}"
        )


@dataclass(frozen=True)
class ServiceTier:
    """One rung of the degradation ladder: a name plus a forecaster."""

    name: str
    forecaster: object  # anything with .predict((N, h, G1, G2, F)) -> (N, p, G1, G2)


@dataclass(frozen=True)
class _Generation:
    """One immutable serving state: everything a batch must see together."""

    number: int
    tiers: Tuple[ServiceTier, ...]
    scaler: MinMaxScaler


@dataclass
class ForecastResponse:
    """One answered request."""

    demand: np.ndarray  # (p, G1, G2) raw demand counts
    tier: str  # which tier answered
    degraded: bool  # True when a tier above `tier` was skipped
    latency_seconds: float
    deadline_missed: bool = False  # answer landed after the deadline
    generation: int = 0  # serving generation that produced this answer
    # Human-readable trail of every tier skipped above the answering one,
    # e.g. ("BikeCAP: error: boom",).
    skips: Tuple[str, ...] = ()


@dataclass
class _PendingRequest:
    """Book-keeping for one request while it walks the tier chain."""

    index: int
    deadline: Optional[float]  # absolute monotonic seconds, None = no deadline
    start: float
    skips: List[str] = field(default_factory=list)
    # Trace position of the request's lifecycle span (MicroBatcher hand-off);
    # per-request tier retries and skip markers parent to it so a degraded
    # request's whole story nests under one span in the trace.
    ctx: Optional[tracing.TraceContext] = None


class ForecastService:
    """Checkpointed model + scaler + fallback chain behind one call."""

    def __init__(
        self,
        tiers: Sequence[Tuple[str, object]],
        scaler: MinMaxScaler,
        *,
        history: int,
        horizon: int,
        grid_shape,
        num_features: int,
        target_feature: int = 0,
        clip_negative: bool = True,
        clock=time.monotonic,
    ):
        if not tiers:
            raise ValueError("ForecastService needs at least one tier")
        if not scaler.fitted:
            raise RuntimeError("ForecastService needs a fitted scaler")
        built = tuple(ServiceTier(name, forecaster) for name, forecaster in tiers)
        names = [tier.name for tier in built]
        if len(set(names)) != len(names):
            raise ValueError(f"tier names must be unique, got {names}")
        self._serving = _Generation(number=0, tiers=built, scaler=scaler)
        self._previous: Optional[_Generation] = None
        self._swap_lock = threading.Lock()
        self.history = int(history)
        self.horizon = int(horizon)
        self.grid_shape = tuple(grid_shape)
        self.num_features = int(num_features)
        self.target_feature = int(target_feature)
        self.clip_negative = clip_negative
        self._clock = clock
        self._latency_ewma: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Serving state: `tiers`/`scaler` delegate to the current generation.
    # The setters exist for pre-serving mutation (the bench wraps the
    # primary with injectors after construction); they republish the state
    # without bumping the generation number — a *swap* is the only thing
    # that advances it.
    @property
    def tiers(self) -> Tuple[ServiceTier, ...]:
        return self._serving.tiers

    @tiers.setter
    def tiers(self, value: Sequence[ServiceTier]) -> None:
        with self._swap_lock:
            current = self._serving
            self._serving = _Generation(
                number=current.number, tiers=tuple(value), scaler=current.scaler
            )

    @property
    def scaler(self) -> MinMaxScaler:
        return self._serving.scaler

    @scaler.setter
    def scaler(self, value: MinMaxScaler) -> None:
        with self._swap_lock:
            current = self._serving
            self._serving = _Generation(
                number=current.number, tiers=current.tiers, scaler=value
            )

    @property
    def generation(self) -> int:
        """The current serving generation number (0 at construction)."""
        return self._serving.number

    def snapshot(self) -> _Generation:
        """The current immutable serving state (generation, tiers, scaler).

        One atomic attribute read — the same pin ``predict_batch`` takes at
        entry. Adaptation callers use it so the generation they later pass
        as ``expected_generation`` and the model/scaler they fine-tuned
        from are guaranteed to be the *same* state.
        """
        return self._serving

    @property
    def previous_generation(self) -> Optional[int]:
        """Generation number a :meth:`revert_primary` would restore."""
        previous = self._previous
        return None if previous is None else previous.number

    def swap_primary(
        self,
        forecaster: object,
        *,
        scaler: Optional[MinMaxScaler] = None,
        expected_generation: Optional[int] = None,
        name: Optional[str] = None,
    ) -> int:
        """Atomically replace the primary tier (and optionally the scaler).

        The flip is lock-scoped compare-and-swap: with
        ``expected_generation`` set, a generation that moved since the
        caller pinned it raises :class:`GenerationConflict` and changes
        nothing. In-flight batches keep the state they snapshotted at
        entry; batches entering after the flip see only the new state. The
        displaced generation is retained for :meth:`revert_primary`.
        Returns the new generation number.
        """
        with self._swap_lock:
            current = self._serving
            if expected_generation is not None and expected_generation != current.number:
                obs_metrics.counter(
                    "serve_generation_swaps_total", kind="conflict"
                ).inc()
                raise GenerationConflict(expected_generation, current.number)
            # The injected crash fires *inside* the critical section but
            # before anything is published — the worst real moment.
            faults.crash_hot_swap(current.tiers[0].name)
            new_scaler = scaler if scaler is not None else current.scaler
            if not new_scaler.fitted:
                raise RuntimeError("swap_primary needs a fitted scaler")
            primary = ServiceTier(
                name if name is not None else current.tiers[0].name, forecaster
            )
            tiers = (primary,) + current.tiers[1:]
            names = [tier.name for tier in tiers]
            if len(set(names)) != len(names):
                raise ValueError(f"tier names must be unique, got {names}")
            self._previous = current
            self._serving = _Generation(
                number=current.number + 1, tiers=tiers, scaler=new_scaler
            )
            obs_metrics.counter("serve_generation_swaps_total", kind="swap").inc()
            tracing.event(
                "serve.swap", generation=self._serving.number, primary=primary.name
            )
            return self._serving.number

    def revert_primary(self, expected_generation: Optional[int] = None) -> int:
        """Restore the generation displaced by the last swap.

        Same lock + compare-and-swap discipline as :meth:`swap_primary`;
        the revert itself advances the generation number (state history is
        linear, never reused), and the reverted-away state becomes the new
        ``.prev`` so a revert can itself be reverted. Returns the new
        generation number.
        """
        with self._swap_lock:
            current = self._serving
            if expected_generation is not None and expected_generation != current.number:
                obs_metrics.counter(
                    "serve_generation_swaps_total", kind="conflict"
                ).inc()
                raise GenerationConflict(expected_generation, current.number)
            previous = self._previous
            if previous is None:
                raise RuntimeError("no previous generation to revert to")
            faults.crash_hot_swap(current.tiers[0].name)
            self._previous = current
            self._serving = _Generation(
                number=current.number + 1, tiers=previous.tiers, scaler=previous.scaler
            )
            obs_metrics.counter("serve_generation_swaps_total", kind="revert").inc()
            tracing.event(
                "serve.swap",
                generation=self._serving.number,
                primary=previous.tiers[0].name,
                reverted_from=current.number,
            )
            return self._serving.number

    @property
    def tier_names(self) -> Tuple[str, ...]:
        return tuple(tier.name for tier in self.tiers)

    @property
    def window_shape(self) -> Tuple[int, ...]:
        """Shape of one raw request window: ``(h, G1, G2, F)``."""
        return (self.history,) + self.grid_shape + (self.num_features,)

    def estimated_latency(self, tier: str) -> Optional[float]:
        """Per-window EWMA latency of a tier, None before its first answer."""
        return self._latency_ewma.get(tier)

    def warm_up(self, batch_sizes: Sequence[int] = (1,)) -> int:
        """Prime every tier's execution plans for the given batch sizes.

        Engine plans are keyed by full shape signatures (see
        :func:`repro.nn.engine.warmup`), so serving both single windows and
        coalesced micro-batches means warming both shapes — otherwise the
        first request at each size pays plan compilation.
        """
        calls = 0
        for tier in self.tiers:
            calls += engine.warmup(
                tier.forecaster.predict, self.window_shape, tuple(batch_sizes)
            )
        return calls

    # ------------------------------------------------------------------
    def predict_one(
        self, window: np.ndarray, deadline_seconds: Optional[float] = None
    ) -> ForecastResponse:
        """Answer a single raw window; sugar over :meth:`predict_batch`."""
        window = np.asarray(window, dtype=float)
        if window.shape != self.window_shape:
            raise ValueError(
                f"expected one raw window of shape {self.window_shape}, got {window.shape}"
            )
        deadline = None
        if deadline_seconds is not None:
            deadline = self._clock() + float(deadline_seconds)
        try:
            return self.predict_batch(window[None], deadlines=[deadline])[0]
        except PartialBatchError as error:
            # A batch of one has exactly one underlying floor failure; the
            # wrapper adds nothing for a single-window caller.
            raise error.errors[0]

    def predict_batch(
        self,
        windows: np.ndarray,
        deadlines: Optional[Sequence[Optional[float]]] = None,
        starts: Optional[Sequence[float]] = None,
        contexts: Optional[Sequence[Optional[tracing.TraceContext]]] = None,
    ) -> List[ForecastResponse]:
        """Answer a batch of raw windows in one coalesced pass.

        ``deadlines`` are absolute monotonic timestamps (``None`` entries
        mean unbounded); ``starts`` are the monotonic enqueue times used for
        latency accounting (defaulting to "now" for direct callers);
        ``contexts`` are optional per-request trace positions (the
        MicroBatcher passes its request-lifecycle spans) that per-request
        trace records parent to. The whole batch goes through the primary
        tier in **one** forward pass; only requests the primary fails (or
        whose deadline rules it out) walk down the chain.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != len(self.window_shape) + 1 or windows.shape[1:] != self.window_shape:
            raise ValueError(
                f"expected raw windows of shape (N, {self.window_shape}), got {windows.shape}"
            )
        now = self._clock()
        count = len(windows)
        if deadlines is None:
            deadlines = [None] * count
        if starts is None:
            starts = [now] * count
        if contexts is None:
            contexts = [None] * count
        if len(deadlines) != count or len(starts) != count or len(contexts) != count:
            raise ValueError("windows, deadlines, starts and contexts must align")

        obs_metrics.counter("serve_batches_total").inc()
        obs_metrics.histogram("serve_batch_size").observe(count)

        # One atomic read: the whole batch — normalize, tier walk,
        # denormalize — runs against this generation even if a hot-swap
        # publishes a new one mid-flight.
        serving = self._serving
        normalized = np.clip(serving.scaler.transform(windows), 0.0, None)
        pending = [
            _PendingRequest(
                index=i, deadline=deadlines[i], start=starts[i], ctx=contexts[i]
            )
            for i in range(count)
        ]
        responses: List[Optional[ForecastResponse]] = [None] * count

        floor_failures: List[Tuple[_PendingRequest, Exception]] = []
        with tracing.span("serve.batch", batch=count, generation=serving.number):
            for position, tier in enumerate(serving.tiers):
                if not pending:
                    break
                is_floor = position == len(serving.tiers) - 1
                if is_floor:
                    attempt, pending = pending, []
                else:
                    attempt, pending = self._partition_by_deadline(tier, pending)
                if not attempt:
                    continue
                answered, failed = self._attempt_tier(
                    tier, normalized, attempt, demote_late=not is_floor
                )
                for request, prediction in answered:
                    responses[request.index] = self._finish(
                        tier, request, prediction, degraded=position > 0,
                        serving=serving,
                    )
                if failed and is_floor:
                    # Nothing left to degrade to for *these* requests — but
                    # their batch-mates already have answers. Surface the
                    # per-request floor errors together after the loop so
                    # one poisoned request cannot void the whole batch.
                    floor_failures = failed
                    break
                pending.extend(request for request, _error in failed)
                pending.sort(key=lambda request: request.index)

        if floor_failures:
            raise PartialBatchError(
                responses,
                {request.index: error for request, error in floor_failures},
            )
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _partition_by_deadline(self, tier, pending):
        """Split requests into (attempt this tier, skip to a cheaper one).

        The tier runs its attempt set as **one** batched forward, so the
        predicted completion time for every attempted request is
        ``now + per_window_estimate × len(attempt)`` — not ``now +
        per_window_estimate``. Deadline-carrying requests are dropped
        tightest-deadline first: each drop shrinks the batch, which can pull
        the predicted finish back under the remaining deadlines and save
        the rest from a doomed attempt.
        """
        now = self._clock()
        estimate = self._latency_ewma.get(tier.name)
        attempt, skipped, bounded = [], [], []
        for request in pending:
            if request.deadline is not None and now > request.deadline:
                self._record_skip(tier, request, REASON_DEADLINE)
                skipped.append(request)
            elif request.deadline is None or estimate is None:
                attempt.append(request)
            else:
                bounded.append(request)
        if bounded:
            bounded.sort(key=lambda request: request.deadline)
            while bounded:
                finish = now + estimate * (len(attempt) + len(bounded))
                if finish <= bounded[0].deadline:
                    break
                request = bounded.pop(0)
                self._record_skip(tier, request, REASON_PREDICTED_DEADLINE)
                skipped.append(request)
            attempt.extend(bounded)
            attempt.sort(key=lambda request: request.index)
        return attempt, skipped

    def _attempt_tier(self, tier, normalized, requests, demote_late: bool = True):
        """Run one tier over its requests; batched first, per-window on failure.

        Returns ``(answered, failed)`` where ``answered`` holds
        ``(request, normalized_prediction)`` pairs and ``failed`` holds
        ``(request, exception)`` pairs. With ``demote_late`` (every tier but
        the floor) a post-run deadline check moves late answers to the
        failed list (reason ``deadline``) so they fall through to a cheaper
        tier; the floor keeps its answer and just flags the miss.
        """
        batch = normalized[[request.index for request in requests]]
        began = self._clock()
        # Windows actually pushed through the forecaster: the batched
        # attempt counts len(requests); each per-window retry adds one more.
        # The EWMA divides elapsed by this, so a retry storm (batched
        # failure + N singles) reads as ~2× per-window cost instead of being
        # folded into the batched estimate unweighted.
        executed_windows = len(requests)
        try:
            with tracing.span("serve.tier", tier=tier.name, batch=len(requests)):
                predictions = np.asarray(tier.forecaster.predict(batch))
            outcomes = [(request, predictions[i]) for i, request in enumerate(requests)]
            errors = []
        except Exception:
            # One bad window must not degrade the whole micro-batch: retry
            # each request alone so only the ones that actually fail fall
            # through to the next tier.
            outcomes, errors = [], []
            for request in requests:
                executed_windows += 1
                try:
                    with tracing.span(
                        "serve.tier.retry", parent=request.ctx, tier=tier.name
                    ):
                        single = np.asarray(
                            tier.forecaster.predict(normalized[request.index][None])
                        )
                    outcomes.append((request, single[0]))
                except Exception as error:  # noqa: BLE001 - tier errors degrade
                    self._record_skip(tier, request, REASON_ERROR, error=error)
                    errors.append((request, error))
        elapsed = self._clock() - began
        if executed_windows:
            self._update_ewma(tier.name, elapsed / executed_windows)

        answered, failed = [], list(errors)
        now = self._clock()
        for request, prediction in outcomes:
            if demote_late and request.deadline is not None and now > request.deadline:
                overrun = now - request.deadline
                error = TimeoutError(
                    f"{tier.name} answered {overrun * 1e3:.1f}ms past the deadline"
                )
                self._record_skip(tier, request, REASON_DEADLINE, error=error)
                failed.append((request, error))
            else:
                answered.append((request, prediction))
        return answered, failed

    def _finish(self, tier, request, normalized_prediction, degraded: bool, serving):
        demand = serving.scaler.inverse_transform(
            normalized_prediction, feature=self.target_feature
        )
        if self.clip_negative:
            demand = np.clip(demand, 0.0, None)
        now = self._clock()
        latency = now - request.start
        missed = request.deadline is not None and now > request.deadline
        obs_metrics.counter("serve_requests_total", tier=tier.name).inc()
        obs_metrics.histogram("serve_latency_seconds", tier=tier.name).observe(latency)
        return ForecastResponse(
            demand=demand,
            tier=tier.name,
            degraded=degraded,
            latency_seconds=latency,
            deadline_missed=missed,
            generation=serving.number,
            skips=tuple(request.skips),
        )

    def _record_skip(self, tier, request, reason: str, error: Optional[Exception] = None):
        detail = f"{tier.name}: {reason}" if error is None else f"{tier.name}: {reason}: {error}"
        request.skips.append(detail)
        obs_metrics.counter(
            "serve_degradations_total", tier=tier.name, reason=reason
        ).inc()
        tracing.event("serve.skip", parent=request.ctx, tier=tier.name, reason=reason)
        runlog.emit("serve_degraded", tier=tier.name, reason=reason, detail=detail)

    def _update_ewma(self, tier_name: str, per_window_seconds: float) -> None:
        previous = self._latency_ewma.get(tier_name)
        if previous is None:
            self._latency_ewma[tier_name] = per_window_seconds
        else:
            self._latency_ewma[tier_name] = (
                _EWMA_ALPHA * per_window_seconds + (1.0 - _EWMA_ALPHA) * previous
            )


__all__ = [
    "ForecastResponse",
    "ForecastService",
    "GenerationConflict",
    "PartialBatchError",
    "REASON_DEADLINE",
    "REASON_ERROR",
    "REASON_PREDICTED_DEADLINE",
    "ServiceTier",
]
