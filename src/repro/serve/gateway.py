"""JSON HTTP gateway over a :class:`~repro.serve.shard.ShardRouter`.

``python -m repro.serve.gateway`` is the front door of the sharded serving
tier: a stdlib :class:`~http.server.ThreadingHTTPServer` (one handler
thread per connection, same shape as the telemetry exporter) that turns

- ``POST /forecast`` — body ``{"window": [[...]], "deadline_ms": 250}``
  (a raw full-grid history window, nested lists of counts) into the merged
  :class:`~repro.serve.shard.ShardedResponse` as JSON: full-grid ``demand``
  plus the per-shard reports, degradation and failed-shard list, verbatim;
- ``GET /healthz`` — liveness plus shard count;
- ``GET /shards`` — the router's static shard map (regions, tiers);
- ``GET /adaptation`` — per-shard online-adaptation state (serving
  generations plus each attached controller's trigger/swap/failure
  counts; ``{"enabled": false, ...}`` when no controller is attached).

Every request runs under a ``gateway.request`` span, so recorded traces
nest gateway → ``serve.route`` → per-shard ``serve.request`` spans, and
increments ``gateway_requests_total{route=…,status=…}``.

Layering (scripts/check_layering.py rule 12): this module speaks stdlib
HTTP on one side and ``repro.serve`` on the other — it imports nothing
else, not even numpy (the router accepts nested lists; responses serialize
through ``as_dict``). JSON floats round-trip exactly (``repr`` ↔ parse), so
the demand a client reads is bit-identical to the router's merge.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlparse

from repro.serve.shard import ShardRouter, obs_metrics, synthetic_router, tracing


class _GatewayHandler(BaseHTTPRequestHandler):
    server_version = "repro-gateway/1.0"

    # ------------------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except BrokenPipeError:  # client went away; nothing to salvage
            pass

    def _route(self) -> str:
        path = urlparse(self.path).path
        return path.rstrip("/") or "/"

    def _count(self, route: str, status: int) -> None:
        obs_metrics.counter(
            "gateway_requests_total", route=route, status=str(status)
        ).inc()

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._route()
        router: ShardRouter = self.server.router
        with tracing.span("gateway.request", route=route, method="GET"):
            if route == "/healthz":
                status, payload = 200, {
                    "status": "ok",
                    "shards": len(router.regions),
                    "grid": list(router.grid_shape),
                }
            elif route == "/shards":
                status, payload = 200, {"shards": router.describe()}
            elif route == "/adaptation":
                status, payload = 200, router.adaptation_status()
            else:
                status, payload = 404, {"error": f"unknown route {route!r}"}
        self._send_json(payload, status)
        self._count(route, status)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        route = self._route()
        router: ShardRouter = self.server.router
        if route != "/forecast":
            self._send_json({"error": f"unknown route {route!r}"}, 404)
            self._count(route, 404)
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length)
        began = time.monotonic()
        with tracing.span("gateway.request", route=route, method="POST"):
            try:
                body = json.loads(raw or b"null")
            except ValueError:
                self._send_json({"error": "request body must be JSON"}, 400)
                self._count(route, 400)
                return
            if not isinstance(body, dict) or "window" not in body:
                self._send_json({"error": 'body must carry a "window" field'}, 400)
                self._count(route, 400)
                return
            deadline_ms = body.get("deadline_ms")
            deadline = float(deadline_ms) / 1e3 if deadline_ms is not None else None
            try:
                response = router.forecast(body["window"], deadline_seconds=deadline)
            except (TypeError, ValueError) as error:
                self._send_json({"error": str(error)}, 400)
                self._count(route, 400)
                return
            except Exception as error:  # noqa: BLE001 - surface, don't crash
                self._send_json({"error": str(error)}, 500)
                self._count(route, 500)
                return
        obs_metrics.histogram("gateway_latency_seconds").observe(
            time.monotonic() - began
        )
        self._send_json(response.as_dict(), 200)
        self._count(route, 200)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # metrics + traces cover it; don't spam stderr per request


class ForecastGateway:
    """The HTTP server wrapping one router; start/stop or serve forever."""

    def __init__(self, router: ShardRouter, host: str = "127.0.0.1", port: int = 0):
        self.router = router
        self._server = ThreadingHTTPServer((host, port), _GatewayHandler)
        self._server.daemon_threads = True
        self._server.router = router  # handlers reach it via self.server
        self._thread = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ForecastGateway":
        import threading

        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ForecastGateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ----------------------------------------------------------------------
def _selfcheck(gateway: ForecastGateway, sample_window) -> int:
    """POST one real window through the gateway's own HTTP surface."""
    import urllib.request

    body = json.dumps({"window": sample_window}).encode("utf-8")
    request = urllib.request.Request(
        f"{gateway.url}/forecast",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        payload = json.loads(reply.read())
    with urllib.request.urlopen(f"{gateway.url}/healthz", timeout=30) as reply:
        health = json.loads(reply.read())
    shards = payload["shards"]
    if health["status"] != "ok" or not shards or payload["failed_shards"]:
        print(f"selfcheck FAILED: health={health} shards={shards}", file=sys.stderr)
        return 1
    print(
        f"selfcheck ok: {len(shards)} shard(s), demand grid "
        f"{len(payload['demand'])}×{len(payload['demand'][0])}"
        f"×{len(payload['demand'][0][0])}, degraded={payload['degraded']}"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--model", default="BikeCAP", help="primary tier (registry name)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--grid", type=int, nargs=2, default=(6, 6))
    parser.add_argument("--history", type=int, default=6)
    parser.add_argument("--horizon", type=int, default=3)
    parser.add_argument("--features", type=int, default=4)
    parser.add_argument("--slots", type=int, default=80, help="simulated time slots")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="start, POST one window to /forecast via HTTP, report, exit",
    )
    args = parser.parse_args(argv)

    router, raw_windows = synthetic_router(
        model=args.model,
        grid=tuple(args.grid),
        num_shards=args.shards,
        history=args.history,
        horizon=args.horizon,
        features=args.features,
        slots=args.slots,
        seed=args.seed,
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait_ms / 1e3,
    )
    with router:
        with ForecastGateway(router, host=args.host, port=args.port) as gateway:
            if args.selfcheck:
                return _selfcheck(gateway, raw_windows[0].tolist())
            print(
                f"gateway live at {gateway.url} "
                f"(/forecast, /healthz, /shards; {args.shards} shards)"
            )
            try:
                gateway._thread.join()
            except KeyboardInterrupt:
                print("shutting down")
    return 0


__all__ = ["ForecastGateway", "main"]


if __name__ == "__main__":
    sys.exit(main())
