"""Build a :class:`ForecastService` from the pipeline's artifacts.

:func:`load_service` is the serving counterpart of
:func:`repro.pipeline.runner.execute`: where ``execute`` turns a
:class:`~repro.pipeline.spec.RunSpec` plus a dataset into a *trained*
forecaster, ``load_service`` turns the spec plus the checkpoint that run
autosaved into a ready-to-answer service — primary model restored through
:func:`repro.pipeline.loading.load_forecaster`, fallback tiers built from
the same registry, scaler restored from persisted state, engine plans
pre-warmed so the first request pays no compilation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.data.normalization import MinMaxScaler
from repro.pipeline import registry
from repro.pipeline.loading import load_forecaster
from repro.pipeline.spec import RunSpec
from repro.serve.service import ForecastService
from repro.store import WindowStore

DEFAULT_FALLBACKS: Tuple[str, ...] = ("Persistence",)


def load_service(
    spec: RunSpec,
    checkpoint_path: Optional[str] = None,
    *,
    scaler: Optional[MinMaxScaler] = None,
    scaler_state: Optional[dict] = None,
    store: Optional[WindowStore] = None,
    grid_shape,
    num_features: int,
    history: Optional[int] = None,
    horizon: Optional[int] = None,
    target_feature: int = 0,
    fallbacks: Sequence[str] = DEFAULT_FALLBACKS,
    warm_batch_sizes: Optional[Sequence[int]] = (1,),
) -> ForecastService:
    """Spec + checkpoint + scaler → a warmed, degradable forecast service.

    The primary tier is the spec's model with the checkpoint's serving
    weights; ``fallbacks`` name registered models (cheapest last) appended
    below it, each built fresh from the registry — the default persistence
    floor needs no training. Exactly one of ``scaler``/``scaler_state``/
    ``store`` must be given: the service refuses to guess normalization
    constants, because serving with constants different from training
    silently skews every answer. Passing a ``store`` shares the window
    store's scaler *object*, so live ingestion with ``update_scaler=True``
    (see :class:`repro.serve.ingest.IngestionPipeline`) refreshes the
    service's normalization in place. ``warm_batch_sizes=None`` skips
    warm-up.
    """
    if sum(source is not None for source in (scaler, scaler_state, store)) != 1:
        raise ValueError("pass exactly one of scaler=, scaler_state= or store=")
    if store is not None:
        scaler = store.scaler
    elif scaler is None:
        scaler = MinMaxScaler.from_state(scaler_state)
    history = history if history is not None else spec.history
    horizon = horizon if horizon is not None else spec.horizon
    primary = load_forecaster(
        spec,
        checkpoint_path,
        grid_shape=grid_shape,
        num_features=num_features,
        history=history,
        horizon=horizon,
    )
    tiers = [(spec.model, primary)]
    for name in fallbacks:
        if name == spec.model:
            raise ValueError(f"fallback {name!r} duplicates the primary tier")
        tiers.append(
            (
                name,
                registry.create(
                    name, history, horizon, tuple(grid_shape), num_features
                ),
            )
        )
    service = ForecastService(
        tiers,
        scaler,
        history=history,
        horizon=horizon,
        grid_shape=grid_shape,
        num_features=num_features,
        target_feature=target_feature,
    )
    if warm_batch_sizes:
        service.warm_up(tuple(warm_batch_sizes))
    return service


def service_from_dataset(
    spec: RunSpec,
    dataset,
    checkpoint_path: Optional[str] = None,
    fallbacks: Sequence[str] = DEFAULT_FALLBACKS,
    warm_batch_sizes: Optional[Sequence[int]] = (1,),
) -> ForecastService:
    """Sugar over :func:`load_service` taking geometry + scaler from a dataset."""
    return load_service(
        spec,
        checkpoint_path,
        scaler=dataset.scaler,
        grid_shape=dataset.grid_shape,
        num_features=dataset.num_features,
        history=dataset.history,
        horizon=dataset.horizon,
        target_feature=dataset.target_feature,
        fallbacks=fallbacks,
        warm_batch_sizes=warm_batch_sizes,
    )


__all__ = ["DEFAULT_FALLBACKS", "load_service", "service_from_dataset"]
