"""Online monitors: forecast-error drift and SLO budgets for a service.

The :mod:`repro.obs.drift` leaf computes *whether* something shifted; this
module is the glue that feeds it from a live :class:`ForecastService` and
publishes the verdicts — ``forecast_drift_score`` gauges,
``drift_detected`` / ``slo_burn`` run-log events, counters — so the rest
of the stack (dashboards scraping :mod:`repro.obs.serve_metrics`, and the
warm-start fine-tune trigger of ROADMAP item 2) sees them without knowing
the detector math.

Typical loop, as each held-out slot's ground truth arrives::

    monitor = DriftMonitor(service)
    report = monitor.feed(window, actual_demand)   # predict, score, emit
    if report.drifted:
        ...  # schedule a warm-start fine-tune

``DriftMonitor.feed`` answers through the service's normal degradation
chain (so the error stream reflects what callers actually received) and
scores the mean absolute error of the returned multi-step demand against
the realized demand.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.obs import drift as obs_drift
from repro.obs import metrics as obs_metrics
from repro.obs import runlog
from repro.serve.service import ForecastResponse, ForecastService


class DriftMonitor:
    """Rolling forecast-error drift tracking for one service.

    Only *model-tier* errors update the drift detector: an answer produced
    by a degraded fallback (persistence after a latency demotion, say)
    carries that tier's error profile, not the model's, and feeding it to
    the detector makes an operational hiccup masquerade as model drift.
    ``model_tiers`` pins which tiers count as the model; by default the
    service's primary tier does (every tier when no service is attached,
    matching bare ``observe_error`` use). Excluded samples are still
    visible — the ``forecast_drift_score`` gauge is labelled by tier and
    ``forecast_drift_excluded_total`` counts what the detector skipped —
    they just cannot trigger a fine-tune.
    """

    def __init__(
        self,
        service: Optional[ForecastService] = None,
        detector: Optional[obs_drift.DriftDetector] = None,
        label: str = "service",
        model_tiers: Optional[Sequence[str]] = None,
    ):
        self.service = service
        self.detector = detector or obs_drift.DriftDetector()
        self.label = label
        self.model_tiers = tuple(model_tiers) if model_tiers is not None else None
        self.excluded_samples = 0

    @property
    def detections(self):
        return self.detector.detections

    def includes(self, tier: Optional[str]) -> bool:
        """Whether a tier's errors feed the drift detector."""
        if tier is None:
            return True
        if self.model_tiers is not None:
            return tier in self.model_tiers
        if self.service is not None:
            # The primary is read dynamically so a hot-swap that renames
            # the tier keeps the monitor honest without reconfiguration.
            return tier == self.service.tiers[0].name
        return True

    def feed(self, window: np.ndarray, actual: np.ndarray) -> obs_drift.DriftReport:
        """Predict one raw window, score it against realized demand.

        ``actual`` is the raw ``(p, G1, G2)`` demand that materialized for
        the window's horizon; the error fed to the detector is the mean
        absolute error over all horizon steps and cells.
        """
        if self.service is None:
            raise RuntimeError("DriftMonitor.feed needs a service; use observe_error otherwise")
        response = self.service.predict_one(window)
        actual = np.asarray(actual, dtype=float)
        if actual.shape != response.demand.shape:
            raise ValueError(
                f"actual demand shape {actual.shape} does not match "
                f"forecast shape {response.demand.shape}"
            )
        error = float(np.mean(np.abs(response.demand - actual)))
        return self.observe_error(error, tier=response.tier)

    def observe_error(self, error: float, tier: Optional[str] = None) -> obs_drift.DriftReport:
        """Feed one precomputed forecast error; publishes score + events.

        Non-model tiers (see :meth:`includes`) are counted and labelled but
        never update the detector: the returned report carries the
        detector's *current* score, unchanged and never drifted.
        """
        tier_label = tier if tier is not None else "model"
        if not self.includes(tier):
            self.excluded_samples += 1
            obs_metrics.counter(
                "forecast_drift_excluded_total", service=self.label, tier=tier_label
            ).inc()
            detector = self.detector
            ewma = detector.ewma.value
            score = 0.0
            if detector.baseline is not None and ewma is not None:
                score = max(0.0, ewma / detector.baseline - 1.0)
            return obs_drift.DriftReport(
                error=float(error),
                score=score,
                drifted=False,
                baseline=detector.baseline,
                ewma=ewma,
                samples=detector.samples,
            )
        report = self.detector.update(error)
        obs_metrics.gauge(
            "forecast_drift_score", service=self.label, tier=tier_label
        ).set(report.score)
        # Unlabelled back-compat gauge: the score of the model-error stream.
        obs_metrics.gauge("forecast_drift_score", service=self.label).set(report.score)
        if report.ewma is not None:
            # Publishing 0.0 while the EWMA is still unfed would be
            # indistinguishable from a true zero-error stream.
            obs_metrics.gauge("forecast_error_ewma", service=self.label).set(report.ewma)
        if report.drifted:
            obs_metrics.counter("forecast_drift_events_total", service=self.label).inc()
            runlog.emit(
                "drift_detected",
                service=self.label,
                detector=report.detector,
                score=report.score,
                error=report.error,
                baseline=report.baseline,
                ewma=report.ewma,
                sample=report.samples,
                tier=tier,
            )
        return report


class SloMonitor:
    """Rolling SLO accounting over :class:`ForecastResponse` streams."""

    def __init__(
        self,
        spec: Optional[obs_drift.SloSpec] = None,
        label: str = "service",
        evaluate_every: int = 32,
    ):
        if evaluate_every < 1:
            raise ValueError(f"evaluate_every must be >= 1, got {evaluate_every}")
        self.tracker = obs_drift.SloTracker(spec)
        self.label = label
        self.evaluate_every = int(evaluate_every)
        self.burn_events = 0
        self._last_breaches: tuple = ()

    def observe(self, response: ForecastResponse) -> Optional[obs_drift.SloStatus]:
        """Track one answered request; evaluates every ``evaluate_every``."""
        self.tracker.observe(
            response.latency_seconds,
            deadline_missed=response.deadline_missed,
            degraded=response.degraded,
        )
        if self.tracker.total % self.evaluate_every == 0:
            return self.evaluate()
        return None

    def evaluate(self) -> Optional[obs_drift.SloStatus]:
        """Score the window now; publish gauges and edge-triggered events.

        A ``slo_burn`` run-log event fires when the breach set *changes*
        (new objective starts burning), not on every evaluation, so a
        sustained breach is one event rather than a flood.
        """
        status = self.tracker.status()
        if status is None:
            return None
        gauge = obs_metrics.gauge
        gauge("slo_p99_latency_seconds", service=self.label).set(status.p99_latency_seconds)
        gauge("slo_deadline_miss_fraction", service=self.label).set(
            status.deadline_miss_fraction
        )
        gauge("slo_degraded_fraction", service=self.label).set(status.degraded_fraction)
        gauge("slo_latency_burn", service=self.label).set(status.latency_burn)
        gauge("slo_deadline_miss_burn", service=self.label).set(status.deadline_miss_burn)
        gauge("slo_degraded_burn", service=self.label).set(status.degraded_burn)
        breaches = tuple(status.breaches)
        if breaches and breaches != self._last_breaches:
            self.burn_events += 1
            obs_metrics.counter("slo_burn_events_total", service=self.label).inc()
            runlog.emit("slo_burn", service=self.label, **status.as_dict())
        self._last_breaches = breaches
        return status


__all__ = ["DriftMonitor", "SloMonitor"]
