"""Online monitors: forecast-error drift and SLO budgets for a service.

The :mod:`repro.obs.drift` leaf computes *whether* something shifted; this
module is the glue that feeds it from a live :class:`ForecastService` and
publishes the verdicts — ``forecast_drift_score`` gauges,
``drift_detected`` / ``slo_burn`` run-log events, counters — so the rest
of the stack (dashboards scraping :mod:`repro.obs.serve_metrics`, and the
warm-start fine-tune trigger of ROADMAP item 2) sees them without knowing
the detector math.

Typical loop, as each held-out slot's ground truth arrives::

    monitor = DriftMonitor(service)
    report = monitor.feed(window, actual_demand)   # predict, score, emit
    if report.drifted:
        ...  # schedule a warm-start fine-tune

``DriftMonitor.feed`` answers through the service's normal degradation
chain (so the error stream reflects what callers actually received) and
scores the mean absolute error of the returned multi-step demand against
the realized demand.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs import drift as obs_drift
from repro.obs import metrics as obs_metrics
from repro.obs import runlog
from repro.serve.service import ForecastResponse, ForecastService


class DriftMonitor:
    """Rolling forecast-error drift tracking for one service."""

    def __init__(
        self,
        service: Optional[ForecastService] = None,
        detector: Optional[obs_drift.DriftDetector] = None,
        label: str = "service",
    ):
        self.service = service
        self.detector = detector or obs_drift.DriftDetector()
        self.label = label

    @property
    def detections(self):
        return self.detector.detections

    def feed(self, window: np.ndarray, actual: np.ndarray) -> obs_drift.DriftReport:
        """Predict one raw window, score it against realized demand.

        ``actual`` is the raw ``(p, G1, G2)`` demand that materialized for
        the window's horizon; the error fed to the detector is the mean
        absolute error over all horizon steps and cells.
        """
        if self.service is None:
            raise RuntimeError("DriftMonitor.feed needs a service; use observe_error otherwise")
        response = self.service.predict_one(window)
        actual = np.asarray(actual, dtype=float)
        if actual.shape != response.demand.shape:
            raise ValueError(
                f"actual demand shape {actual.shape} does not match "
                f"forecast shape {response.demand.shape}"
            )
        error = float(np.mean(np.abs(response.demand - actual)))
        return self.observe_error(error, tier=response.tier)

    def observe_error(self, error: float, tier: Optional[str] = None) -> obs_drift.DriftReport:
        """Feed one precomputed forecast error; publishes score + events."""
        report = self.detector.update(error)
        obs_metrics.gauge("forecast_drift_score", service=self.label).set(report.score)
        obs_metrics.gauge("forecast_error_ewma", service=self.label).set(
            report.ewma if report.ewma is not None else 0.0
        )
        if report.drifted:
            obs_metrics.counter("forecast_drift_events_total", service=self.label).inc()
            runlog.emit(
                "drift_detected",
                service=self.label,
                detector=report.detector,
                score=report.score,
                error=report.error,
                baseline=report.baseline,
                ewma=report.ewma,
                sample=report.samples,
                tier=tier,
            )
        return report


class SloMonitor:
    """Rolling SLO accounting over :class:`ForecastResponse` streams."""

    def __init__(
        self,
        spec: Optional[obs_drift.SloSpec] = None,
        label: str = "service",
        evaluate_every: int = 32,
    ):
        if evaluate_every < 1:
            raise ValueError(f"evaluate_every must be >= 1, got {evaluate_every}")
        self.tracker = obs_drift.SloTracker(spec)
        self.label = label
        self.evaluate_every = int(evaluate_every)
        self.burn_events = 0
        self._last_breaches: tuple = ()

    def observe(self, response: ForecastResponse) -> Optional[obs_drift.SloStatus]:
        """Track one answered request; evaluates every ``evaluate_every``."""
        self.tracker.observe(
            response.latency_seconds,
            deadline_missed=response.deadline_missed,
            degraded=response.degraded,
        )
        if self.tracker.total % self.evaluate_every == 0:
            return self.evaluate()
        return None

    def evaluate(self) -> Optional[obs_drift.SloStatus]:
        """Score the window now; publish gauges and edge-triggered events.

        A ``slo_burn`` run-log event fires when the breach set *changes*
        (new objective starts burning), not on every evaluation, so a
        sustained breach is one event rather than a flood.
        """
        status = self.tracker.status()
        if status is None:
            return None
        gauge = obs_metrics.gauge
        gauge("slo_p99_latency_seconds", service=self.label).set(status.p99_latency_seconds)
        gauge("slo_deadline_miss_fraction", service=self.label).set(
            status.deadline_miss_fraction
        )
        gauge("slo_degraded_fraction", service=self.label).set(status.degraded_fraction)
        gauge("slo_latency_burn", service=self.label).set(status.latency_burn)
        gauge("slo_deadline_miss_burn", service=self.label).set(status.deadline_miss_burn)
        gauge("slo_degraded_burn", service=self.label).set(status.degraded_burn)
        breaches = tuple(status.breaches)
        if breaches and breaches != self._last_breaches:
            self.burn_events += 1
            obs_metrics.counter("slo_burn_events_total", service=self.label).inc()
            runlog.emit("slo_burn", service=self.label, **status.as_dict())
        self._last_breaches = breaches
        return status


__all__ = ["DriftMonitor", "SloMonitor"]
