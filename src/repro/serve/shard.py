"""Region-sharded serving: partition the city grid, scatter, gather, merge.

One :class:`~repro.serve.service.ForecastService` per *region shard* is the
city-scale deployment shape (ROADMAP item 2): each shard owns a contiguous
``(rows, cols)`` block of the ``(G1, G2)`` grid with its **own** scaler and
checkpoint — demand extrema differ between downtown and suburb blocks, so
per-shard normalization is a feature, not an accident. The pieces:

- :func:`partition_grid` — split ``(G1, G2)`` into ``num_shards`` contiguous
  :class:`ShardRegion` blocks that tile the grid exactly.
- :func:`load_shard_services` / :func:`router_from_dataset` — per-shard
  scaler/checkpoint wiring through :func:`~repro.serve.loader.load_service`.
- :class:`ShardRouter` — scatters a full-grid request window to one
  :class:`~repro.serve.batching.MicroBatcher` per shard, gathers the partial
  demands and merges them into one :class:`ShardedResponse`.

Merge semantics are honest by construction:

- the merged response carries a per-shard :class:`ShardReport` (tier, skips,
  degradation) — nothing is averaged away;
- **one degraded shard degrades the merged answer** (``degraded=True``),
  because a consumer rebalancing the whole city must not trust a partially
  stale grid more than its weakest region;
- **one failed shard does not fail the city**: its block is filled from the
  router-level floor (repeat the region's last observed demand slot across
  the horizon — the same persistence shape the shard's own floor tier would
  have answered with), the report says ``failed=True`` with the error, and
  ``serve_shard_failures_total{shard=…}`` counts it.

Tracing: ``ShardRouter.forecast`` opens a ``serve.route`` span on the
calling thread; each per-shard submission's ``serve.request`` span starts
under it, so gateway → router → shard spans link into one trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

# Re-exported for repro.serve.gateway, which is layering-restricted to
# repro.serve + stdlib imports (scripts/check_layering.py rule 12) and
# reaches the observability surfaces through this module.
from repro.obs import metrics as obs_metrics
from repro.obs import runlog, tracing
from repro.data.datasets import dataset_from_tensor
from repro.pipeline.spec import RunSpec
from repro.serve.batching import MicroBatcher
from repro.serve.loader import DEFAULT_FALLBACKS, load_service
from repro.serve.service import ForecastResponse, ForecastService

# Small-but-real BikeCAP geometry shared by the serve bench and the gateway
# CLI demo pool: every kernel exercised, smoke runs finish in seconds.
DEMO_HPARAMS = {
    "BikeCAP": {
        "pyramid_size": 2,
        "capsule_dim": 2,
        "future_capsule_dim": 2,
        "decoder_hidden": 4,
    }
}


@dataclass(frozen=True)
class ShardRegion:
    """One contiguous block of the city grid: ``[rows) × [cols)``."""

    name: str
    rows: Tuple[int, int]  # half-open [start, stop) over G1
    cols: Tuple[int, int]  # half-open [start, stop) over G2

    def __post_init__(self) -> None:
        if self.rows[0] >= self.rows[1] or self.cols[0] >= self.cols[1]:
            raise ValueError(f"empty shard region {self.name}: {self.rows} × {self.cols}")

    @property
    def grid_shape(self) -> Tuple[int, int]:
        return (self.rows[1] - self.rows[0], self.cols[1] - self.cols[0])

    def slice_window(self, window: np.ndarray) -> np.ndarray:
        """This region's block of a full-grid window ``(h, G1, G2, F)``."""
        return window[:, self.rows[0] : self.rows[1], self.cols[0] : self.cols[1], :]

    def slice_tensor(self, tensor: np.ndarray) -> np.ndarray:
        """This region's block of a raw slot tensor ``(T, G1, G2, F)``."""
        return tensor[:, self.rows[0] : self.rows[1], self.cols[0] : self.cols[1], :]

    def place(self, grid: np.ndarray, block: np.ndarray) -> None:
        """Write this region's demand block into a ``(p, G1, G2)`` grid."""
        grid[:, self.rows[0] : self.rows[1], self.cols[0] : self.cols[1]] = block

    def as_dict(self) -> dict:
        return {"name": self.name, "rows": list(self.rows), "cols": list(self.cols)}


def partition_grid(grid_shape, num_shards: int) -> Tuple[ShardRegion, ...]:
    """Split ``(G1, G2)`` into ``num_shards`` contiguous blocks tiling it.

    ``num_shards`` is factored into an ``r × c`` block layout (``r`` bands
    of rows × ``c`` bands of columns); among the factorizations that fit,
    the one whose blocks are closest to square wins — compact regions keep
    spatially-correlated demand together, which is what per-shard models
    want. Band sizes differ by at most one cell, so the tiling is exact for
    any grid the layout fits.
    """
    g1, g2 = int(grid_shape[0]), int(grid_shape[1])
    num_shards = int(num_shards)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    layouts = [
        (r, num_shards // r)
        for r in range(1, num_shards + 1)
        if num_shards % r == 0 and r <= g1 and num_shards // r <= g2
    ]
    if not layouts:
        raise ValueError(
            f"cannot tile a {g1}×{g2} grid with {num_shards} contiguous shards"
        )
    # Squarest blocks first; ties prefer more row bands (windows are stored
    # row-major, so row bands slice contiguously).
    rows_n, cols_n = min(layouts, key=lambda rc: (abs(g1 / rc[0] - g2 / rc[1]), -rc[0]))

    def bands(extent: int, count: int) -> List[Tuple[int, int]]:
        base, extra = divmod(extent, count)
        edges, start = [], 0
        for i in range(count):
            stop = start + base + (1 if i < extra else 0)
            edges.append((start, stop))
            start = stop
        return edges

    regions = []
    for i, rows in enumerate(bands(g1, rows_n)):
        for j, cols in enumerate(bands(g2, cols_n)):
            regions.append(
                ShardRegion(name=f"shard{i * cols_n + j}", rows=rows, cols=cols)
            )
    return tuple(regions)


@dataclass
class ShardReport:
    """What one shard contributed to a merged answer."""

    shard: str
    tier: Optional[str]  # None when the shard failed outright
    degraded: bool
    deadline_missed: bool
    latency_seconds: float
    skips: Tuple[str, ...] = ()
    failed: bool = False
    error: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "tier": self.tier,
            "degraded": self.degraded,
            "deadline_missed": self.deadline_missed,
            "latency_seconds": self.latency_seconds,
            "skips": list(self.skips),
            "failed": self.failed,
            "error": self.error,
        }


@dataclass
class ShardedResponse:
    """One merged full-grid answer assembled from per-shard partials."""

    demand: np.ndarray  # (p, G1, G2) raw demand counts, all regions filled
    degraded: bool  # any shard degraded OR failed
    deadline_missed: bool  # any shard missed its deadline
    latency_seconds: float  # scatter → last gather, as the caller saw it
    shards: Tuple[ShardReport, ...] = ()
    failed_shards: Tuple[str, ...] = ()

    @property
    def tier(self) -> str:
        """Worst-case tier summary for SLO tooling: the per-shard tiers
        joined, e.g. ``"BikeCAP|Persistence"`` (order follows the shards)."""
        return "|".join(report.tier or "<failed>" for report in self.shards)

    def as_dict(self) -> dict:
        return {
            "demand": self.demand.tolist(),
            "degraded": self.degraded,
            "deadline_missed": self.deadline_missed,
            "latency_seconds": self.latency_seconds,
            "shards": [report.as_dict() for report in self.shards],
            "failed_shards": list(self.failed_shards),
        }


class ShardRouter:
    """Scatter full-grid windows to per-shard batchers; gather and merge."""

    def __init__(
        self,
        regions: Sequence[ShardRegion],
        services: Mapping[str, ForecastService],
        *,
        max_batch: int = 8,
        max_wait_seconds: float = 0.002,
        clock=time.monotonic,
    ):
        self.regions = tuple(regions)
        if not self.regions:
            raise ValueError("ShardRouter needs at least one region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"shard names must be unique, got {names}")
        missing = [name for name in names if name not in services]
        if missing:
            raise ValueError(f"no service for shard(s) {missing}")
        self.services: Dict[str, ForecastService] = {
            name: services[name] for name in names
        }

        g1 = max(region.rows[1] for region in self.regions)
        g2 = max(region.cols[1] for region in self.regions)
        covered = np.zeros((g1, g2), dtype=int)
        for region in self.regions:
            covered[region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]] += 1
        if not np.all(covered == 1):
            raise ValueError("shard regions must tile the grid exactly once")
        self.grid_shape = (g1, g2)

        reference = self.services[names[0]]
        for region in self.regions:
            service = self.services[region.name]
            if tuple(service.grid_shape) != region.grid_shape:
                raise ValueError(
                    f"shard {region.name}: service grid {service.grid_shape} != "
                    f"region grid {region.grid_shape}"
                )
            for attribute in ("history", "horizon", "num_features", "target_feature"):
                if getattr(service, attribute) != getattr(reference, attribute):
                    raise ValueError(
                        f"shard {region.name}: {attribute} differs from "
                        f"shard {names[0]} ({getattr(service, attribute)} != "
                        f"{getattr(reference, attribute)})"
                    )
        self.history = reference.history
        self.horizon = reference.horizon
        self.num_features = reference.num_features
        self.target_feature = reference.target_feature
        self._clock = clock
        self._batchers: Dict[str, MicroBatcher] = {
            region.name: MicroBatcher(
                self.services[region.name],
                max_batch=max_batch,
                max_wait_seconds=max_wait_seconds,
                clock=clock,
            )
            for region in self.regions
        }
        # Per-shard AdaptationControllers (repro.serve.adapt), attached
        # after construction; shards adapt independently — downtown can
        # drift and fine-tune while the suburbs keep their model.
        self._adaptation: Dict[str, object] = {}

    # ------------------------------------------------------------------
    @property
    def window_shape(self) -> Tuple[int, ...]:
        """Shape of one raw full-grid window: ``(h, G1, G2, F)``."""
        return (self.history,) + self.grid_shape + (self.num_features,)

    @property
    def batch_sizes(self) -> Dict[str, List[int]]:
        """Per-shard coalesced batch sizes, for bench reporting."""
        return {name: list(b.batch_sizes) for name, b in self._batchers.items()}

    def attach_adaptation(self, controllers: Mapping[str, object]) -> None:
        """Register per-shard adaptation controllers (name → controller).

        Each value is an :class:`~repro.serve.adapt.AdaptationController`
        bound to that shard's service and store; a partial mapping is fine
        (only some shards adapt). Unknown shard names are rejected loudly.
        """
        known = {region.name for region in self.regions}
        unknown = sorted(set(controllers) - known)
        if unknown:
            raise ValueError(f"no shard(s) named {unknown}; have {sorted(known)}")
        self._adaptation.update(controllers)

    def adaptation_status(self) -> dict:
        """Per-shard adaptation state for the gateway's ``/adaptation``."""
        return {
            "enabled": bool(self._adaptation),
            "shards": {
                name: controller.status()
                for name, controller in sorted(self._adaptation.items())
            },
            "generations": {
                region.name: self.services[region.name].generation
                for region in self.regions
            },
        }

    def describe(self) -> List[dict]:
        """Static per-shard facts for the gateway's ``/shards`` route."""
        return [
            {
                **region.as_dict(),
                "tiers": list(self.services[region.name].tier_names),
                "window_shape": list(self.services[region.name].window_shape),
            }
            for region in self.regions
        ]

    # ------------------------------------------------------------------
    def forecast(
        self, window, deadline_seconds: Optional[float] = None
    ) -> ShardedResponse:
        """Answer one full-grid window by scatter → per-shard gather → merge."""
        window = np.asarray(window, dtype=float)
        if window.shape != self.window_shape:
            raise ValueError(
                f"expected one raw full-grid window of shape {self.window_shape}, "
                f"got {window.shape}"
            )
        began = self._clock()
        obs_metrics.counter("serve_router_requests_total").inc()
        with tracing.span("serve.route", shards=len(self.regions)):
            futures = []
            for region in self.regions:
                obs_metrics.counter(
                    "serve_shard_requests_total", shard=region.name
                ).inc()
                futures.append(
                    self._batchers[region.name].submit(
                        region.slice_window(window),
                        deadline_seconds=deadline_seconds,
                    )
                )

            demand = np.empty((self.horizon,) + self.grid_shape, dtype=float)
            reports: List[ShardReport] = []
            failed: List[str] = []
            for region, future in zip(self.regions, futures):
                try:
                    response: ForecastResponse = future.result()
                except Exception as error:  # noqa: BLE001 - shard loss degrades
                    region.place(demand, self._floor(window, region))
                    reports.append(
                        ShardReport(
                            shard=region.name,
                            tier=None,
                            degraded=True,
                            deadline_missed=False,
                            latency_seconds=self._clock() - began,
                            skips=(f"{region.name}: failed: {error}",),
                            failed=True,
                            error=str(error),
                        )
                    )
                    failed.append(region.name)
                    obs_metrics.counter(
                        "serve_shard_failures_total", shard=region.name
                    ).inc()
                    tracing.event(
                        "serve.shard_failed", shard=region.name, error=str(error)
                    )
                    runlog.emit(
                        "serve_shard_failed", shard=region.name, error=str(error)
                    )
                    continue
                region.place(demand, response.demand)
                reports.append(
                    ShardReport(
                        shard=region.name,
                        tier=response.tier,
                        degraded=response.degraded,
                        deadline_missed=response.deadline_missed,
                        latency_seconds=response.latency_seconds,
                        skips=response.skips,
                    )
                )

        latency = self._clock() - began
        merged = ShardedResponse(
            demand=demand,
            degraded=any(report.degraded or report.failed for report in reports),
            deadline_missed=any(report.deadline_missed for report in reports),
            latency_seconds=latency,
            shards=tuple(reports),
            failed_shards=tuple(failed),
        )
        if merged.degraded:
            obs_metrics.counter("serve_router_degraded_total").inc()
        obs_metrics.histogram("serve_router_latency_seconds").observe(latency)
        return merged

    def _floor(self, window: np.ndarray, region: ShardRegion) -> np.ndarray:
        """Emergency fill for a shard that failed outright.

        Repeat the region's last observed target-feature slot across the
        horizon — raw counts in, raw counts out, no scaler, no model: the
        same persistence shape the shard's own floor tier would have
        produced, computable even when the shard's service is the thing
        that broke. Infallible by construction (a pure numpy reshuffle).
        """
        last = region.slice_window(window)[-1, :, :, self.target_feature]
        block = np.broadcast_to(last, (self.horizon,) + last.shape)
        return np.clip(block, 0.0, None)

    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = 5.0) -> None:
        for batcher in self._batchers.values():
            batcher.close(timeout=timeout)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
def load_shard_services(
    spec: RunSpec,
    regions: Sequence[ShardRegion],
    *,
    num_features: int,
    history: Optional[int] = None,
    horizon: Optional[int] = None,
    target_feature: int = 0,
    scaler=None,
    scaler_states: Optional[Mapping[str, dict]] = None,
    checkpoint_paths: Optional[Mapping[str, str]] = None,
    fallbacks: Sequence[str] = DEFAULT_FALLBACKS,
    warm_batch_sizes: Optional[Sequence[int]] = (1,),
) -> Dict[str, ForecastService]:
    """One warmed :class:`ForecastService` per region, through ``load_service``.

    Normalization comes from exactly one of ``scaler`` (one fitted scaler
    shared by every shard — valid because :class:`MinMaxScaler` is
    per-feature over *all* cells, so a full-grid fit covers any sub-grid)
    or ``scaler_states`` (per-shard persisted states, the deployment shape
    where each shard fit its own extrema). ``checkpoint_paths`` maps shard
    names to checkpoint archives; shards without an entry build the spec's
    model fresh from the registry.
    """
    if (scaler is None) == (scaler_states is None):
        raise ValueError("pass exactly one of scaler= or scaler_states=")
    services: Dict[str, ForecastService] = {}
    for region in regions:
        sources = {}
        if scaler is not None:
            sources["scaler"] = scaler
        else:
            if region.name not in scaler_states:
                raise ValueError(f"scaler_states is missing shard {region.name!r}")
            sources["scaler_state"] = scaler_states[region.name]
        checkpoint = (checkpoint_paths or {}).get(region.name)
        services[region.name] = load_service(
            spec,
            checkpoint,
            grid_shape=region.grid_shape,
            num_features=num_features,
            history=history,
            horizon=horizon,
            target_feature=target_feature,
            fallbacks=fallbacks,
            warm_batch_sizes=warm_batch_sizes,
            **sources,
        )
    return services


def router_from_dataset(
    spec: RunSpec,
    dataset,
    num_shards: int,
    *,
    checkpoint_paths: Optional[Mapping[str, str]] = None,
    fallbacks: Sequence[str] = DEFAULT_FALLBACKS,
    warm_batch_sizes: Optional[Sequence[int]] = (1,),
    max_batch: int = 8,
    max_wait_seconds: float = 0.002,
) -> ShardRouter:
    """Partition a full-grid dataset's geometry and stand up the router.

    The dataset's (full-grid) scaler is shared across shards; for
    per-shard scalers build per-region datasets and use
    :func:`load_shard_services` directly (the bench's ``--shards`` mode
    does exactly that).
    """
    regions = partition_grid(dataset.grid_shape, num_shards)
    services = load_shard_services(
        spec,
        regions,
        num_features=dataset.num_features,
        history=dataset.history,
        horizon=dataset.horizon,
        target_feature=dataset.target_feature,
        scaler=dataset.scaler,
        checkpoint_paths=checkpoint_paths,
        fallbacks=fallbacks,
        warm_batch_sizes=warm_batch_sizes,
    )
    return ShardRouter(
        regions, services, max_batch=max_batch, max_wait_seconds=max_wait_seconds
    )


def synthetic_router(
    *,
    model: str = "BikeCAP",
    grid=(6, 6),
    num_shards: int = 4,
    history: int = 6,
    horizon: int = 3,
    features: int = 4,
    slots: int = 80,
    seed: int = 0,
    hparams: Optional[dict] = None,
    max_batch: int = 8,
    max_wait_seconds: float = 0.002,
):
    """Demo pool over a synthetic demand tensor → ``(router, raw_windows)``.

    Used by the gateway CLI and smoke tests: no checkpoints, models built
    fresh from the registry (``DEMO_HPARAMS`` keeps BikeCAP tiny). A
    ``Persistence`` primary gets no fallback tier (it would duplicate
    itself); everything else gets the default persistence floor.
    """
    rng = np.random.default_rng(seed)
    tensor = rng.random((slots, int(grid[0]), int(grid[1]), features)) * 20.0
    dataset = dataset_from_tensor(tensor, history=history, horizon=horizon)
    spec = RunSpec(
        model=model,
        history=history,
        horizon=horizon,
        epochs=0,
        seed=seed,
        hparams=dict(hparams if hparams is not None else DEMO_HPARAMS.get(model, {})),
    )
    fallbacks = () if model in DEFAULT_FALLBACKS else DEFAULT_FALLBACKS
    router = router_from_dataset(
        spec,
        dataset,
        num_shards,
        fallbacks=fallbacks,
        warm_batch_sizes=(1, max_batch),
        max_batch=max_batch,
        max_wait_seconds=max_wait_seconds,
    )
    return router, dataset.test_view().raw_x()


__all__ = [
    "DEMO_HPARAMS",
    "ShardRegion",
    "ShardReport",
    "ShardRouter",
    "ShardedResponse",
    "load_shard_services",
    "partition_grid",
    "router_from_dataset",
    "synthetic_router",
]
