"""`repro.serve` — online, latency-bounded forecast serving.

The deployment story of the paper (Sec. IV-B) is an online loop: multi-step
demand forecasts answered on request and consumed by rebalancing. This
package is that loop, built on the pipeline's offline artifacts:

- :mod:`repro.serve.service` — :class:`ForecastService`: fitted scaler +
  ordered tier chain (primary model → cheaper fallbacks) behind one
  normalize → predict → denormalize call, with per-request deadlines and
  graceful degradation (tier failures and deadline overruns answer from
  the next tier, tagged, instead of erroring).
- :mod:`repro.serve.batching` — :class:`MicroBatcher`: coalesces
  concurrent single-window requests into one batched forward pass,
  bit-identical to the equivalent sequential ``predict``.
- :mod:`repro.serve.loader` — :func:`load_service`: RunSpec + checkpoint +
  scaler state → a warmed service (models built via the pipeline registry
  only; layering keeps ``serve`` off ``core``/``baselines`` and
  ``experiments`` entirely).
- :mod:`repro.serve.ingest` — :class:`IngestionPipeline`: live aggregated
  slots append to the *same* chunked :class:`repro.store.WindowStore` the
  training dataflow uses; each window whose horizon materializes is scored
  against realized demand (optionally through the drift monitor), and
  ``update_scaler=True`` refreshes the shared scaler's running extrema
  incrementally (``partial_fit``) — no serve-local window slicing.
- :mod:`repro.serve.faults` — deterministic fault/latency injection for
  degradation tests and the bench's degraded-traffic mode.
- :mod:`repro.serve.monitor` — :class:`DriftMonitor` / :class:`SloMonitor`:
  feed the :mod:`repro.obs.drift` detectors from a live service and publish
  ``forecast_drift_score`` gauges plus ``drift_detected`` / ``slo_burn``
  run-log events.
- :mod:`repro.serve.adapt` — :class:`AdaptationController`: the closed
  online-adaptation loop (ROADMAP item 2). Drift verdicts trigger a
  warm-started fine-tune on the store's freshest windows (through
  ``repro.resilience`` recovery), a shadow-validation gate scores the
  candidate against the live model on held-out recent windows, and only a
  winner is hot-swapped in — an atomic, generation-numbered,
  compare-and-swap flip (:meth:`ForecastService.swap_primary`) that
  in-flight batches never observe mid-request; every failure mode is
  typed and leaves the original model serving.
- :mod:`repro.serve.shard` — :func:`partition_grid` / :class:`ShardRouter`:
  the city-scale tier. Contiguous region shards each run their own service
  (own scaler, own checkpoint) behind their own micro-batcher; the router
  scatters a full-grid window, gathers the partial demands, and merges
  degradation honestly (per-shard reports; one degraded shard degrades the
  merged answer, one failed shard falls back to that shard's floor).
- :mod:`repro.serve.gateway` — ``python -m repro.serve.gateway``: stdlib
  JSON/HTTP front door over a router (``/forecast``, ``/healthz``,
  ``/shards``), traces linking gateway → router → shard spans.
- :mod:`repro.serve.bench` — ``python -m repro.serve.bench``: closed-loop
  load generator writing ``results/BENCH_serve.json`` (throughput, p50/p99
  latency, degraded fraction); ``--trace`` records request-scoped spans,
  ``--telemetry-port`` serves live ``/metrics``, ``--drift-samples`` replays
  ground truth through the drift monitor.

Request lifecycle and degradation tiers are documented in
docs/ARCHITECTURE.md; BENCH_serve.json fields in docs/PERFORMANCE.md.
"""

from repro.serve.adapt import (
    AdaptationController,
    AdaptationError,
    AdaptationPolicy,
    FineTuneDivergence,
    GateRejected,
    ShadowReport,
    SwapConflict,
)
from repro.serve.batching import MicroBatcher
from repro.serve.faults import FaultInjectingForecaster, SlowForecaster
from repro.serve.ingest import IngestionPipeline, IngestReport, ReadyWindow
from repro.serve.loader import DEFAULT_FALLBACKS, load_service, service_from_dataset
from repro.serve.monitor import DriftMonitor, SloMonitor
from repro.serve.shard import (
    ShardedResponse,
    ShardRegion,
    ShardReport,
    ShardRouter,
    load_shard_services,
    partition_grid,
    router_from_dataset,
)
from repro.serve.service import (
    REASON_DEADLINE,
    REASON_ERROR,
    REASON_PREDICTED_DEADLINE,
    ForecastResponse,
    ForecastService,
    GenerationConflict,
    PartialBatchError,
    ServiceTier,
)

__all__ = [
    "AdaptationController",
    "AdaptationError",
    "AdaptationPolicy",
    "DEFAULT_FALLBACKS",
    "DriftMonitor",
    "FineTuneDivergence",
    "GateRejected",
    "GenerationConflict",
    "ShadowReport",
    "SwapConflict",
    "FaultInjectingForecaster",
    "ForecastResponse",
    "ForecastService",
    "IngestReport",
    "IngestionPipeline",
    "MicroBatcher",
    "PartialBatchError",
    "ReadyWindow",
    "ShardedResponse",
    "ShardRegion",
    "ShardReport",
    "ShardRouter",
    "SloMonitor",
    "REASON_DEADLINE",
    "REASON_ERROR",
    "REASON_PREDICTED_DEADLINE",
    "ServiceTier",
    "SlowForecaster",
    "load_service",
    "load_shard_services",
    "partition_grid",
    "router_from_dataset",
    "service_from_dataset",
]
