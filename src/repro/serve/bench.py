"""Closed-loop serving load generator: ``python -m repro.serve.bench``.

Builds a synthetic dataset, stands up a :class:`ForecastService` (primary
model + persistence floor) behind a :class:`MicroBatcher`, then drives it
with ``--clients`` closed-loop threads (each submits its next request only
after receiving the previous answer — the classic closed-loop model, so
offered load adapts to service speed instead of overrunning it). Optional
``--fault-rate``/``--slow-ms``/``--deadline-ms`` inject failures and
deadline pressure to measure the *degraded* serving path, not just the
happy one.

``--adapt`` (with a nonzero ``--drift-shift``) appends a deterministic
regime-change replay through the full online-adaptation loop — drift
detection triggers a warm-start fine-tune, a shadow gate validates the
candidate, and an atomic hot-swap flips it in — then reports pre- vs
post-swap forecast error (``serve_adaptation_recovery_*`` gauges);
``--adapt-fault`` injects chaos (poisoned fine-tune / crash mid-swap) to
demonstrate the original model keeps serving.

Writes ``results/BENCH_serve.json`` (``REPRO_BENCH_DIR`` overrides the
directory); field semantics are documented in docs/PERFORMANCE.md and the
snapshot diffs with ``scripts/bench_compare.py``, which fails on >20%
latency *or* throughput regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Optional

import numpy as np

from repro import faults
from repro.data.datasets import dataset_from_tensor
from repro.nn import engine
from repro.obs import drift as obs_drift
from repro.obs import runlog, serve_metrics, tracing
from repro.obs.artifacts import atomic_write_json
from repro.obs.metrics import Histogram
from repro.pipeline import registry
from repro.pipeline.loading import load_forecaster
from repro.pipeline.spec import RunSpec
from repro.serve.adapt import AdaptationController, AdaptationPolicy
from repro.serve.batching import MicroBatcher
from repro.serve.faults import FaultInjectingForecaster, SlowForecaster
from repro.serve.ingest import IngestionPipeline
from repro.serve.loader import service_from_dataset
from repro.serve.monitor import DriftMonitor, SloMonitor
from repro.serve.service import ForecastService, ServiceTier
from repro.serve.shard import DEMO_HPARAMS, ShardRouter, partition_grid
from repro.store import WindowStore

# Small-but-real BikeCAP geometry: big enough to exercise every kernel,
# small enough that a smoke run finishes in seconds (shared with the
# gateway CLI's demo pool).
DEFAULT_HPARAMS = DEMO_HPARAMS


def _unwrap(forecaster):
    """Strip fault/latency injection wrappers (for plan warm-up)."""
    while hasattr(forecaster, "inner"):
        forecaster = forecaster.inner
    return forecaster


def _spec_from_args(args) -> RunSpec:
    """The one RunSpec every bench mode builds its primary from."""
    hparams = dict(DEFAULT_HPARAMS.get(args.model, {}))
    if args.hparams:
        hparams.update(json.loads(args.hparams))
    return RunSpec(
        model=args.model,
        history=args.history,
        horizon=args.horizon,
        epochs=args.epochs,
        seed=args.seed,
        hparams=hparams,
    )


def build_service(args) -> tuple:
    """Dataset + spec → (service, raw request windows, dataset)."""
    rng = np.random.default_rng(args.seed)
    tensor = rng.random((args.slots, args.grid[0], args.grid[1], args.features)) * 20.0
    dataset = dataset_from_tensor(tensor, history=args.history, horizon=args.horizon)

    spec = _spec_from_args(args)

    checkpoint_path = None
    if args.epochs > 0:
        # Full offline→online path: train through the pipeline funnel with
        # autosave, then reload the checkpoint exactly as a server would.
        from repro.pipeline.runner import execute

        result = execute(
            spec, dataset, checkpoint_dir=os.path.join(args.out, "serve-bench-ckpt")
        )
        checkpoint_path = result.checkpoint_path

    primary = load_forecaster(
        spec,
        checkpoint_path,
        grid_shape=dataset.grid_shape,
        num_features=dataset.num_features,
    )
    floor = registry.create(
        "Persistence", args.history, args.horizon, dataset.grid_shape, dataset.num_features
    )
    window_shape = (args.history,) + dataset.grid_shape + (dataset.num_features,)
    for forecaster in (primary, floor):
        engine.warmup(forecaster.predict, window_shape, (1, args.max_batch))

    if args.slow_ms > 0:
        primary = SlowForecaster(primary, args.slow_ms / 1e3)
    if args.fault_rate > 0:
        primary = FaultInjectingForecaster(primary, args.fault_rate)

    service = ForecastService(
        [(args.model, primary), ("Persistence", floor)],
        dataset.scaler,
        history=args.history,
        horizon=args.horizon,
        grid_shape=dataset.grid_shape,
        num_features=dataset.num_features,
        target_feature=dataset.target_feature,
    )
    # Raw request traffic: the test split's history windows, gathered
    # straight from the chunked store's raw slots — exactly what an online
    # caller would send (counts, not normalized values).
    raw_windows = dataset.test_view().raw_x()
    return service, raw_windows, dataset


def _inject_faults(service: ForecastService, args) -> None:
    """Wrap the primary tier with the CLI's latency/fault injectors."""
    primary = service.tiers[0]
    forecaster = primary.forecaster
    if args.slow_ms > 0:
        forecaster = SlowForecaster(forecaster, args.slow_ms / 1e3)
    if args.fault_rate > 0:
        forecaster = FaultInjectingForecaster(forecaster, args.fault_rate)
    service.tiers = (ServiceTier(primary.name, forecaster),) + service.tiers[1:]


def build_sharded(args) -> tuple:
    """Synthetic city → per-shard datasets/services → (router, raw windows).

    Each region gets its **own** dataset sliced from the full tensor, so
    each shard fits its own scaler on its own block's extrema — the
    per-shard normalization a real deployment would persist. With
    ``--epochs > 0`` each shard also trains its own checkpoint through the
    pipeline funnel and reloads it exactly as a server would.
    """
    rng = np.random.default_rng(args.seed)
    tensor = rng.random((args.slots, args.grid[0], args.grid[1], args.features)) * 20.0
    dataset = dataset_from_tensor(tensor, history=args.history, horizon=args.horizon)
    regions = partition_grid(args.grid, args.shards)
    spec = _spec_from_args(args)

    services = {}
    for region in regions:
        shard_dataset = dataset_from_tensor(
            region.slice_tensor(tensor), history=args.history, horizon=args.horizon
        )
        checkpoint_path = None
        if args.epochs > 0:
            from repro.pipeline.runner import execute

            result = execute(
                spec,
                shard_dataset,
                checkpoint_dir=os.path.join(
                    args.out, f"serve-bench-ckpt-{region.name}"
                ),
            )
            checkpoint_path = result.checkpoint_path
        service = service_from_dataset(
            spec,
            shard_dataset,
            checkpoint_path=checkpoint_path,
            warm_batch_sizes=(1, args.max_batch),
        )
        _inject_faults(service, args)
        services[region.name] = service

    router = ShardRouter(
        regions,
        services,
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait_ms / 1e3,
    )
    raw_windows = dataset.test_view().raw_x()
    return router, raw_windows


def run_load(service, raw_windows, args):
    """Drive the batcher closed-loop; returns (responses, elapsed_seconds)."""
    deadline = args.deadline_ms / 1e3 if args.deadline_ms is not None else None
    responses = []
    responses_lock = threading.Lock()
    errors = []
    barrier = threading.Barrier(args.clients + 1)
    per_client = args.requests // args.clients
    if per_client < 1:
        raise SystemExit("--requests must be >= --clients")

    with MicroBatcher(
        service, max_batch=args.max_batch, max_wait_seconds=args.max_wait_ms / 1e3
    ) as batcher:

        def client(offset: int) -> None:
            barrier.wait()
            for i in range(per_client):
                window = raw_windows[(offset + i) % len(raw_windows)]
                try:
                    response = batcher.forecast(window, deadline_seconds=deadline)
                except Exception as error:  # noqa: BLE001 - report, don't hang
                    with responses_lock:
                        errors.append(error)
                    return
                with responses_lock:
                    responses.append(response)

        threads = [
            threading.Thread(target=client, args=(offset,), daemon=True)
            for offset in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        began = time.monotonic()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - began
        batch_sizes = list(batcher.batch_sizes)

    if errors:
        raise RuntimeError(f"{len(errors)} request(s) errored; first: {errors[0]!r}")
    return responses, elapsed, batch_sizes


def run_sharded_load(router, raw_windows, args):
    """Closed-loop clients over ``ShardRouter.forecast``; mirrors run_load."""
    deadline = args.deadline_ms / 1e3 if args.deadline_ms is not None else None
    responses = []
    responses_lock = threading.Lock()
    errors = []
    barrier = threading.Barrier(args.clients + 1)
    per_client = args.requests // args.clients
    if per_client < 1:
        raise SystemExit("--requests must be >= --clients")

    def client(offset: int) -> None:
        barrier.wait()
        for i in range(per_client):
            window = raw_windows[(offset + i) % len(raw_windows)]
            try:
                response = router.forecast(window, deadline_seconds=deadline)
            except Exception as error:  # noqa: BLE001 - report, don't hang
                with responses_lock:
                    errors.append(error)
                return
            with responses_lock:
                responses.append(response)

    threads = [
        threading.Thread(target=client, args=(offset,), daemon=True)
        for offset in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    began = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - began

    if errors:
        raise RuntimeError(f"{len(errors)} request(s) errored; first: {errors[0]!r}")
    return responses, elapsed


def summarize_sharded(responses, elapsed, router, args) -> dict:
    """BENCH_serve.json payload for a ``--shards`` run.

    The throughput gauge ends in ``_throughput_rps`` so
    ``scripts/bench_compare.py`` gates it (higher is better) without any
    bench-specific wiring; p50/p99 follow the single-service naming with a
    ``sharded`` infix.
    """
    latency = Histogram("client_latency")
    degraded = 0
    missed = 0
    shard_tier_counts: dict = {}
    shard_failures: dict = {}
    for response in responses:
        latency.observe(response.latency_seconds)
        degraded += bool(response.degraded)
        missed += bool(response.deadline_missed)
        for report in response.shards:
            tiers = shard_tier_counts.setdefault(report.shard, {})
            tier = report.tier if report.tier is not None else "<failed>"
            tiers[tier] = tiers.get(tier, 0) + 1
            if report.failed:
                shard_failures[report.shard] = shard_failures.get(report.shard, 0) + 1
    total = len(responses)
    stats = latency.summary()
    batch_sizes = router.batch_sizes
    all_batches = [size for sizes in batch_sizes.values() for size in sizes]
    gauges = {
        "bench_serve_sharded_latency_mean_seconds": stats["mean"],
        "bench_serve_sharded_latency_p50_seconds": stats["p50"],
        "bench_serve_sharded_latency_p90_seconds": stats["p90"],
        "bench_serve_sharded_latency_p99_seconds": stats["p99"],
        "bench_serve_sharded_throughput_rps": total / elapsed if elapsed > 0 else 0.0,
        "bench_serve_sharded_degraded_fraction": degraded / total,
        "bench_serve_sharded_deadline_missed_fraction": missed / total,
        "bench_serve_sharded_batch_mean_size": (
            float(np.mean(all_batches)) if all_batches else 0.0
        ),
    }
    return {
        "config": {
            key: value for key, value in sorted(vars(args).items()) if key != "out"
        },
        "gauges": gauges,
        "requests": total,
        "elapsed_seconds": elapsed,
        "shards": {
            region.name: {
                **region.as_dict(),
                "tier_counts": dict(sorted(shard_tier_counts.get(region.name, {}).items())),
                "failures": shard_failures.get(region.name, 0),
                "batches": len(batch_sizes.get(region.name, [])),
            }
            for region in router.regions
        },
    }


def drift_pass(service, dataset, args) -> DriftMonitor:
    """Live-ingestion ground-truth replay through the forecast-drift monitor.

    Replays the test range's raw slots one at a time through an
    :class:`IngestionPipeline` backed by a fresh serve-side
    :class:`~repro.store.WindowStore` — the same append path a live
    deployment runs. Each slot that completes a window yields that window
    plus its realized demand, which is scored by the drift monitor; the
    store is rebuilt and the slots replayed again until ``--drift-samples``
    errors have been scored. From the halfway point on, realized demand is
    scaled by ``1 + --drift-shift`` — a deterministic regime change, so a
    nonzero shift fires ``drift_detected`` exactly once (the detector
    re-baselines after firing and the shifted stream is stable thereafter).
    """
    monitor = DriftMonitor(service, label="serve-bench")
    store = dataset.store
    if store is None:
        raise ValueError("drift replay needs a store-backed dataset")
    test = dataset.test_view()
    first, total = test.start, store.num_slots
    shift_from = args.drift_samples // 2
    scored = 0
    while scored < args.drift_samples:
        live = WindowStore(
            store.history,
            store.horizon,
            target_feature=store.target_feature,
            scaler=service.scaler,
            normalize=False,
        )
        pipeline = IngestionPipeline(live, service=service, label="serve-bench")
        for slot in range(first, total):
            report = pipeline.ingest(store.raw_slots(slot, slot + 1))
            for ready in report.ready:
                actual = ready.actual
                if args.drift_shift and scored >= shift_from:
                    actual = actual * (1.0 + args.drift_shift)
                monitor.feed(ready.window, actual)
                scored += 1
                if scored >= args.drift_samples:
                    return monitor
    return monitor


def adapt_pass(service, dataset, spec, args) -> dict:
    """Deterministic regime change → drift → fine-tune → hot-swap, measured.

    Unlike :func:`drift_pass` (which shifts only the *scored* ground truth),
    this replay ingests genuinely shifted slots, so the shared store's
    freshest windows reflect the new regime — exactly what the
    :class:`AdaptationController` fine-tunes on. Phase one replays the test
    range unshifted to settle the detector baseline; phase two replays it
    scaled by ``1 + --drift-shift`` (cycling the range as needed) until
    ``--adapt-samples`` shifted windows have been scored. The controller
    runs inline (``background=False``) with an effectively infinite
    cooldown, so the replay performs exactly one fine-tune attempt; errors
    scored before the hot-swap vs. after it are the recovery measurement.

    ``--adapt-fault`` injects chaos through :mod:`repro.faults`:``fine-tune``
    poisons every fine-tune gradient step (recovery retries exhaust →
    ``adaptation_failed``), ``swap`` crashes inside the hot-swap critical
    section — in both cases the pre-swap model keeps answering and the
    recovery gauges are omitted (there was no recovery).
    """
    store = dataset.store
    if store is None:
        raise ValueError("adaptation replay needs a store-backed dataset")
    test = dataset.test_view()
    first, total = test.start, store.num_slots

    live = WindowStore(
        store.history,
        store.horizon,
        target_feature=store.target_feature,
        scaler=service.scaler,
        normalize=False,
    )
    monitor = DriftMonitor(service, label="serve-bench")
    policy = AdaptationPolicy(
        epochs=args.adapt_epochs,
        min_windows=4,
        max_windows=32,
        holdout_fraction=0.25,
        # One attempt per replay: the cooldown outlives any bench run.
        cooldown_seconds=1e9,
        lr=args.adapt_lr,
    )
    controller = AdaptationController(
        service,
        live,
        spec,
        label="serve-bench",
        background=False,
        policy=policy,
        warm_batch_sizes=(1, args.max_batch),
    )
    pipeline = IngestionPipeline(
        live, service=service, monitor=monitor, label="serve-bench",
        controller=controller,
    )

    base_generation = service.generation
    shift = 1.0 + args.drift_shift
    pre_errors: list = []
    post_errors: list = []

    def replay_once(shifted: bool, budget: int) -> int:
        scored = 0
        for slot in range(first, total):
            raw = store.raw_slots(slot, slot + 1)
            report = pipeline.ingest(raw * shift if shifted else raw)
            for ready in report.ready:
                if ready.report is None:
                    continue
                scored += 1
                if shifted:
                    if service.generation != base_generation:
                        post_errors.append(ready.report.error)
                    else:
                        pre_errors.append(ready.report.error)
                if scored >= budget:
                    return scored
        return scored

    def replay(shifted: bool, budget: int) -> int:
        # One pass over the test range yields only a handful of completed
        # windows; cycle it until the budget is met (the store just keeps
        # appending — same slots, ever-fresher windows).
        scored = 0
        while scored < budget:
            advanced = replay_once(shifted, budget - scored)
            if advanced == 0:
                break
            scored += advanced
        return scored

    plan = None
    if args.adapt_fault == "fine-tune":
        # Poison every optimizer step: recovery rolls back and retries, the
        # retry poisons again, and the policy exhausts — a fine-tune that
        # cannot converge, not one that merely hiccups.
        plan = faults.FaultPlan(grad_nan_at_step=1, grad_nan_times=10_000)
    elif args.adapt_fault == "swap":
        plan = faults.FaultPlan(crash_swap_at=1)

    context = faults.active(plan) if plan is not None else None
    try:
        if context is not None:
            context.__enter__()
        # The baseline phase must outlast the detector's warmup or the
        # shifted regime would be folded into the frozen baseline.
        baseline_budget = max(monitor.detector.warmup + 8, args.adapt_samples // 2)
        replay(shifted=False, budget=baseline_budget)
        replay(shifted=True, budget=args.adapt_samples)
    finally:
        if context is not None:
            context.__exit__(None, None, None)

    pre = float(np.mean(pre_errors)) if pre_errors else 0.0
    post = float(np.mean(post_errors)) if post_errors else 0.0
    improvement = 1.0 - post / pre if pre > 0 and post_errors else 0.0
    return {
        "pre_swap_error": pre,
        "post_swap_error": post,
        "improvement_fraction": improvement,
        "pre_samples": len(pre_errors),
        "post_samples": len(post_errors),
        "drift_events": len(monitor.detections),
        "fault": args.adapt_fault,
        "fault_fired": dict(plan.fired) if plan is not None else {},
        "status": controller.status(),
    }


def slo_pass(responses, args):
    """Replay the answered responses through the SLO budget tracker."""
    spec = obs_drift.SloSpec(
        p99_latency_seconds=args.slo_p99_ms / 1e3,
        window=max(len(responses), 1),
        # The bench scores one window over the whole run; a tiny run must
        # still yield a verdict rather than silently dropping the section.
        min_samples=max(1, min(20, len(responses))),
    )
    monitor = SloMonitor(spec, label="serve-bench", evaluate_every=len(responses) + 1)
    for response in responses:
        monitor.observe(response)
    return monitor.evaluate()


def summarize(responses, elapsed, batch_sizes, args) -> dict:
    latency = Histogram("client_latency")
    tier_counts: dict = {}
    degraded = 0
    missed = 0
    for response in responses:
        latency.observe(response.latency_seconds)
        tier_counts[response.tier] = tier_counts.get(response.tier, 0) + 1
        degraded += bool(response.degraded)
        missed += bool(response.deadline_missed)
    total = len(responses)
    stats = latency.summary()
    gauges = {
        "bench_serve_latency_mean_seconds": stats["mean"],
        "bench_serve_latency_min_seconds": stats["min"],
        "bench_serve_latency_p50_seconds": stats["p50"],
        "bench_serve_latency_p90_seconds": stats["p90"],
        "bench_serve_latency_p99_seconds": stats["p99"],
        "bench_serve_throughput_rps": total / elapsed if elapsed > 0 else 0.0,
        "bench_serve_degraded_fraction": degraded / total,
        "bench_serve_deadline_missed_fraction": missed / total,
        "bench_serve_batch_mean_size": float(np.mean(batch_sizes)) if batch_sizes else 0.0,
    }
    return {
        "config": {
            key: value for key, value in sorted(vars(args).items()) if key != "out"
        },
        "gauges": gauges,
        "requests": total,
        "elapsed_seconds": elapsed,
        "tier_counts": dict(sorted(tier_counts.items())),
        "batch_sizes": batch_sizes,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="BikeCAP", help="primary tier (registry name)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--grid", type=int, nargs=2, default=(6, 6))
    parser.add_argument("--history", type=int, default=6)
    parser.add_argument("--horizon", type=int, default=3)
    parser.add_argument("--features", type=int, default=4)
    parser.add_argument("--slots", type=int, default=80, help="simulated time slots")
    parser.add_argument("--epochs", type=int, default=0, help=">0 trains + checkpoints first")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--hparams", default=None, help="JSON overrides for the primary")
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=">0 runs the region-sharded pool (ShardRouter) instead of one service",
    )
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--fault-rate", type=float, default=0.0)
    parser.add_argument("--slow-ms", type=float, default=0.0, help="primary-tier added latency")
    parser.add_argument(
        "--trace", action="store_true", help="record request-scoped traces during the load"
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="run an untraced reference load first and report the throughput cost of tracing",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        help="serve live /metrics during the run (0 = ephemeral port)",
    )
    parser.add_argument(
        "--drift-samples",
        type=int,
        default=0,
        help=">0 replays this many ground-truth slots through the drift monitor",
    )
    parser.add_argument(
        "--drift-shift",
        type=float,
        default=0.0,
        help="scale realized demand by 1+shift for the second half of the drift replay",
    )
    parser.add_argument(
        "--adapt",
        action="store_true",
        help="after the load, replay a deterministic regime change through the "
        "online-adaptation loop (drift → fine-tune → shadow gate → hot-swap) "
        "and measure post-swap error recovery; needs a nonzero --drift-shift",
    )
    parser.add_argument(
        "--adapt-epochs", type=int, default=8, help="fine-tune epochs per adaptation"
    )
    parser.add_argument(
        "--adapt-lr",
        type=float,
        default=0.05,
        help="fine-tune learning rate (a regime change needs a more "
        "aggressive step than offline training)",
    )
    parser.add_argument(
        "--adapt-samples",
        type=int,
        default=60,
        help="shifted windows to score during the adaptation replay",
    )
    parser.add_argument(
        "--adapt-fault",
        choices=("none", "fine-tune", "swap"),
        default="none",
        help="inject chaos into the adaptation: poison every fine-tune gradient "
        "step, or crash inside the hot-swap critical section",
    )
    parser.add_argument("--slo-p99-ms", type=float, default=500.0, help="SLO latency target")
    parser.add_argument(
        "--out", default=os.environ.get("REPRO_BENCH_DIR", "results"), help="output directory"
    )
    args = parser.parse_args(argv)
    args.grid = tuple(args.grid)
    if args.trace_overhead:
        args.trace = True
    if args.adapt and not args.drift_shift:
        parser.error("--adapt needs a nonzero --drift-shift (the regime change)")
    if args.shards:
        if args.drift_samples > 0:
            parser.error("--drift-samples is not supported with --shards")
        if args.trace_overhead:
            parser.error("--trace-overhead is not supported with --shards")
        if args.adapt:
            parser.error("--adapt is not supported with --shards")
        return _main_sharded(args)

    service, raw_windows, dataset = build_service(args)
    exporter = None
    if args.telemetry_port is not None:
        exporter = serve_metrics.start_exporter(port=args.telemetry_port)
        print(f"telemetry live at {exporter.url}/metrics")
    logger = runlog.start_run(
        "serve-bench", seed=args.seed, config={"bench": "serve", "spec_model": args.model}
    )
    baseline_throughput = None
    drift_monitor = None
    slo_status = None
    adaptation = None
    try:
        if args.trace_overhead:
            # Reference pass with recording off; the measured pass below is
            # identical except for the trace ring, so the throughput delta
            # *is* the tracing tax.
            reference, reference_elapsed, _ = run_load(service, raw_windows, args)
            if reference and reference_elapsed > 0:
                baseline_throughput = len(reference) / reference_elapsed
        if args.trace:
            tracing.start_recording()
        responses, elapsed, batch_sizes = run_load(service, raw_windows, args)
        slo_status = slo_pass(responses, args)
        if args.drift_samples > 0:
            drift_monitor = drift_pass(service, dataset, args)
        if args.adapt:
            # After the latency measurement: the replay mutates the service
            # (hot-swap) and must not contaminate the load numbers.
            adaptation = adapt_pass(service, dataset, _spec_from_args(args), args)
    finally:
        if logger is not None:
            logger.close(status="ok")

    payload = summarize(responses, elapsed, batch_sizes, args)
    gauges = payload["gauges"]
    if baseline_throughput:
        overhead = max(0.0, 1.0 - gauges["bench_serve_throughput_rps"] / baseline_throughput)
        gauges["bench_serve_trace_overhead_fraction"] = overhead
    if slo_status is not None:
        payload["slo"] = slo_status.as_dict()
    if drift_monitor is not None:
        payload["drift"] = {
            "events": len(drift_monitor.detections),
            "samples": args.drift_samples,
            "shift": args.drift_shift,
        }
    if adaptation is not None:
        payload["adaptation"] = adaptation
        if adaptation["status"]["swapped"] and adaptation["post_samples"]:
            # Gated by scripts/bench_compare.py: the error gauges must not
            # creep up, the improvement fraction must not creep down.
            gauges["serve_adaptation_recovery_pre_swap_error"] = adaptation[
                "pre_swap_error"
            ]
            gauges["serve_adaptation_recovery_post_swap_error"] = adaptation[
                "post_swap_error"
            ]
            gauges["serve_adaptation_recovery_improvement_fraction"] = adaptation[
                "improvement_fraction"
            ]
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, "BENCH_serve.json")
    atomic_write_json(path, payload, sort_keys=True)
    if args.trace:
        trace_path = tracing.dump_chrome_trace(os.path.join(args.out, "BENCH_serve.trace.json"))
        tracing.dump_jsonl(os.path.join(args.out, "BENCH_serve.trace.jsonl"))
        tracing.stop_recording()
        print(f"  trace  {trace_path} (load into Perfetto / chrome://tracing)")
    if exporter is not None:
        exporter.stop()

    gauges = payload["gauges"]
    print(f"serve bench: {payload['requests']} requests in {elapsed:.3f}s")
    print(
        f"  throughput {gauges['bench_serve_throughput_rps']:8.1f} req/s   "
        f"mean batch {gauges['bench_serve_batch_mean_size']:.2f}"
    )
    print(
        f"  latency    p50 {gauges['bench_serve_latency_p50_seconds'] * 1e3:7.2f}ms   "
        f"p99 {gauges['bench_serve_latency_p99_seconds'] * 1e3:7.2f}ms"
    )
    print(
        f"  degraded   {gauges['bench_serve_degraded_fraction'] * 100:5.1f}%   "
        f"tiers {payload['tier_counts']}"
    )
    if adaptation is not None:
        status = adaptation["status"]
        print(
            f"  adaptation triggered={status['triggered']} "
            f"swapped={status['swapped']} rejected={status['rejected']} "
            f"failed={status['failed']} generation={status['generation']}"
        )
        if status["swapped"] and adaptation["post_samples"]:
            print(
                f"  recovery   pre-swap err {adaptation['pre_swap_error']:.3f} → "
                f"post-swap err {adaptation['post_swap_error']:.3f} "
                f"({adaptation['improvement_fraction']:+.1%})"
            )
    print(f"  wrote {path}")
    return 0


def _main_sharded(args) -> int:
    """The ``--shards N`` flow: pool build, closed-loop load, sharded gauges."""
    router, raw_windows = build_sharded(args)
    exporter = None
    if args.telemetry_port is not None:
        exporter = serve_metrics.start_exporter(port=args.telemetry_port)
        print(f"telemetry live at {exporter.url}/metrics")
    logger = runlog.start_run(
        "serve-bench",
        seed=args.seed,
        config={"bench": "serve-sharded", "spec_model": args.model, "shards": args.shards},
    )
    slo_status = None
    try:
        if args.trace:
            tracing.start_recording()
        with router:
            responses, elapsed = run_sharded_load(router, raw_windows, args)
            slo_status = slo_pass(responses, args)
            payload = summarize_sharded(responses, elapsed, router, args)
    finally:
        if logger is not None:
            logger.close(status="ok")
    if slo_status is not None:
        payload["slo"] = slo_status.as_dict()
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, "BENCH_serve.json")
    atomic_write_json(path, payload, sort_keys=True)
    if args.trace:
        trace_path = tracing.dump_chrome_trace(
            os.path.join(args.out, "BENCH_serve.trace.json")
        )
        tracing.dump_jsonl(os.path.join(args.out, "BENCH_serve.trace.jsonl"))
        tracing.stop_recording()
        print(f"  trace  {trace_path} (load into Perfetto / chrome://tracing)")
    if exporter is not None:
        exporter.stop()

    gauges = payload["gauges"]
    failed = sum(shard["failures"] for shard in payload["shards"].values())
    print(
        f"serve bench (sharded ×{args.shards}): "
        f"{payload['requests']} requests in {elapsed:.3f}s"
    )
    print(
        f"  throughput {gauges['bench_serve_sharded_throughput_rps']:8.1f} req/s   "
        f"mean shard batch {gauges['bench_serve_sharded_batch_mean_size']:.2f}"
    )
    print(
        f"  latency    p50 {gauges['bench_serve_sharded_latency_p50_seconds'] * 1e3:7.2f}ms   "
        f"p99 {gauges['bench_serve_sharded_latency_p99_seconds'] * 1e3:7.2f}ms"
    )
    print(
        f"  degraded   {gauges['bench_serve_sharded_degraded_fraction'] * 100:5.1f}%   "
        f"shard failures {failed}"
    )
    print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
