"""Micro-batching: coalesce concurrent requests into one forward pass.

Concurrent clients each submit one window; a single worker thread drains
the queue, stacks up to ``max_batch`` windows (waiting at most
``max_wait_seconds`` after the first arrival for stragglers), and answers
them all with **one** :meth:`ForecastService.predict_batch` call. Because
the coalesced pass *is* a single sequential ``predict`` over the stacked
windows in arrival order, its responses are bit-identical to calling the
service directly with that batch — pinned by
``tests/serve/test_batching.py``.

The worker owns all model execution, so the numpy substrate's thread-local
state (workspace arena, plan caches) sees one consistent thread; client
threads only block on a :class:`concurrent.futures.Future`.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.serve.service import ForecastResponse, ForecastService, PartialBatchError


@dataclass
class _Submission:
    window: np.ndarray
    deadline: Optional[float]  # absolute monotonic seconds
    start: float  # monotonic enqueue time
    future: Future
    # Request-lifecycle trace span: started on the submitting thread, ended
    # on the worker once the response lands, so the recorded span covers
    # queue wait + coalesced inference — exactly the caller's latency.
    span: object = None


class MicroBatcher:
    """A queue that turns concurrent single-window requests into batches."""

    def __init__(
        self,
        service: ForecastService,
        max_batch: int = 8,
        max_wait_seconds: float = 0.002,
        clock=time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_seconds < 0:
            raise ValueError(f"max_wait_seconds must be >= 0, got {max_wait_seconds}")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._queue: List[_Submission] = []
        self._closed = False
        self.batch_sizes: List[int] = []  # every coalesced batch, in order
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(
        self, window: np.ndarray, deadline_seconds: Optional[float] = None
    ) -> Future:
        """Enqueue one raw window; resolves to a :class:`ForecastResponse`.

        ``deadline_seconds`` is a budget measured from *now* (submission),
        so time spent queued counts against it — exactly the latency the
        caller experiences.
        """
        window = np.asarray(window, dtype=float)
        if window.shape != self.service.window_shape:
            raise ValueError(
                f"expected one raw window of shape {self.service.window_shape}, "
                f"got {window.shape}"
            )
        now = self._clock()
        deadline = now + float(deadline_seconds) if deadline_seconds is not None else None
        submission = _Submission(
            window=window,
            deadline=deadline,
            start=now,
            future=Future(),
            # A no-op handle unless trace recording is on; parents to the
            # submitting thread's current span so end-to-end traces cross
            # the hand-off into the worker thread.
            span=tracing.start_span("serve.request"),
        )
        with self._arrived:
            if self._closed:
                # The lifecycle span is already open on this thread; close
                # it before raising or it dangles and corrupts parent
                # resolution for every later span the caller starts.
                submission.span.end(status="error", error="MicroBatcher is closed")
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append(submission)
            self._arrived.notify()
        return submission.future

    def forecast(
        self, window: np.ndarray, deadline_seconds: Optional[float] = None
    ) -> ForecastResponse:
        """Blocking sugar: submit one window and wait for its response."""
        return self.submit(window, deadline_seconds=deadline_seconds).result()

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop accepting work, drain the queue, and join the worker.

        A healthy worker drains the queue before exiting, so after the join
        nothing is usually left. If the worker could *not* be joined in time
        (wedged in a tier call, or dead), whatever is still queued would
        block its callers forever — those futures are failed with a
        "batcher closed" error, and the unjoined worker is surfaced via a
        :class:`RuntimeWarning` plus ``serve_batcher_unjoined_total``.
        """
        with self._arrived:
            self._closed = True
            self._arrived.notify()
        self._worker.join(timeout=timeout)
        with self._arrived:
            leftovers = self._queue[:]
            del self._queue[:]
        for submission in leftovers:
            error = RuntimeError("MicroBatcher closed before this request was answered")
            submission.span.end(status="error", error=str(error))
            if submission.future.set_running_or_notify_cancel():
                submission.future.set_exception(error)
        if self._worker.is_alive():
            obs_metrics.counter("serve_batcher_unjoined_total").inc()
            warnings.warn(
                f"MicroBatcher worker failed to stop within {timeout}s; "
                f"{len(leftovers)} queued request(s) failed with a closed error",
                RuntimeWarning,
                stacklevel=2,
            )

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self._gather()
            if batch is None:
                return
            self._answer(batch)

    def _gather(self) -> Optional[List[_Submission]]:
        """Block for the first submission, then coalesce stragglers.

        Returns ``None`` when closed and fully drained. The straggler wait
        is bounded by ``max_wait_seconds`` after the *first* request of the
        batch arrived, so an early submitter's latency cost for batching is
        capped regardless of traffic.
        """
        with self._arrived:
            while not self._queue and not self._closed:
                self._arrived.wait(timeout=0.1)
            if not self._queue:
                return None  # closed and drained
            cutoff = self._clock() + self.max_wait_seconds
            while len(self._queue) < self.max_batch and not self._closed:
                remaining = cutoff - self._clock()
                if remaining <= 0:
                    break
                self._arrived.wait(timeout=remaining)
            batch = self._queue[: self.max_batch]
            del self._queue[: self.max_batch]
            return batch

    def _answer(self, batch: List[_Submission]) -> None:
        self.batch_sizes.append(len(batch))
        obs_metrics.histogram("serve_microbatch_coalesced").observe(len(batch))
        try:
            responses = self.service.predict_batch(
                np.stack([submission.window for submission in batch]),
                deadlines=[submission.deadline for submission in batch],
                starts=[submission.start for submission in batch],
                contexts=[submission.span.context for submission in batch],
            )
        except PartialBatchError as error:
            # The floor failed for a subset of the batch: deliver every
            # answer that was computed and fail exactly the broken requests,
            # each with its own underlying error.
            for i, submission in enumerate(batch):
                failure = error.errors.get(i)
                if failure is None:
                    self._resolve(submission, error.responses[i])
                else:
                    self._fail(submission, failure)
            return
        except Exception as error:  # noqa: BLE001 - propagate to the waiters
            for submission in batch:
                self._fail(submission, error)
            return
        for submission, response in zip(batch, responses):
            self._resolve(submission, response)

    @staticmethod
    def _resolve(submission: _Submission, response: ForecastResponse) -> None:
        submission.span.end(
            tier=response.tier,
            degraded=response.degraded,
            deadline_missed=response.deadline_missed,
        )
        if submission.future.set_running_or_notify_cancel():
            submission.future.set_result(response)

    @staticmethod
    def _fail(submission: _Submission, error: Exception) -> None:
        submission.span.end(status="error", error=str(error))
        if submission.future.set_running_or_notify_cancel():
            submission.future.set_exception(error)


__all__ = ["MicroBatcher"]
