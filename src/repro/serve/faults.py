"""Compatibility shim: serving fault injectors now live in :mod:`repro.faults`.

The injectors were promoted to the shared, dependency-free ``repro.faults``
leaf so the training chaos harness (``repro.resilience``) and the serving
degradation tests exercise the same primitives. Import from
``repro.faults`` in new code; this module keeps the historical
``repro.serve.faults`` import path working.
"""

from __future__ import annotations

from repro.faults import FaultInjectingForecaster, SlowForecaster

__all__ = ["FaultInjectingForecaster", "SlowForecaster"]
