"""Deterministic fault injection for exercising the degradation path.

Wraps any forecaster so a configurable fraction of windows "poison" it:
a batch containing a poisoned window raises (as a real model bug would),
and the per-window retry then fails for exactly the poisoned windows.
Poisoning is a pure function of the window's bytes (CRC32), so the same
window fails identically inside a batch, on retry, and across runs — no
hidden RNG state to make a failure test flake.
"""

from __future__ import annotations

import time
import zlib

import numpy as np


class FaultInjectingForecaster:
    """Forecaster wrapper that fails deterministically on ~``rate`` of windows."""

    def __init__(self, inner, rate: float, salt: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.inner = inner
        self.rate = float(rate)
        self.salt = int(salt)

    def is_poisoned(self, window: np.ndarray) -> bool:
        digest = zlib.crc32(np.ascontiguousarray(window).tobytes()) ^ self.salt
        return (digest % 10_000) / 10_000.0 < self.rate

    def predict(self, x: np.ndarray) -> np.ndarray:
        poisoned = sum(self.is_poisoned(window) for window in np.asarray(x))
        if poisoned:
            raise RuntimeError(f"injected fault: {poisoned} poisoned window(s) in batch")
        return self.inner.predict(x)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class SlowForecaster:
    """Forecaster wrapper that sleeps before answering (deadline tests/bench)."""

    def __init__(self, inner, delay_seconds: float, sleep=None):
        self.inner = inner
        self.delay_seconds = float(delay_seconds)
        self._sleep = sleep if sleep is not None else time.sleep

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._sleep(self.delay_seconds)
        return self.inner.predict(x)

    def __getattr__(self, name):
        return getattr(self.inner, name)


__all__ = ["FaultInjectingForecaster", "SlowForecaster"]
