#!/usr/bin/env python
"""Compare two ``BENCH_*.json`` snapshots and flag mean-time regressions.

Usage::

    python scripts/bench_compare.py results_before/BENCH_substrate.json \
        results_after/BENCH_substrate.json [--threshold 0.20]

Both files must be snapshots of the same bench module (the gauges written by
``benchmarks/bench_substrate.py`` / ``benchmarks/bench_train.py``, or
``python -m repro.serve.bench``'s ``BENCH_serve.json``). Every
``*_mean_seconds*`` gauge present in both files is compared; the script
prints a per-kernel table and exits non-zero if any kernel's mean slowed
down by more than ``--threshold`` (default 20%). Throughput gauges
(``*_throughput_rps``) are higher-is-better and fail on a drop of more
than the threshold instead. Adaptation-recovery gauges from ``--adapt``
serve-bench runs are gated the same way: the pre/post-swap forecast
errors are lower-is-better, the recovery improvement fraction
higher-is-better. Kernels present in only one snapshot are
reported but never fail the comparison — new benches must not break an
older baseline diff.

On a busy or single-core machine the mean is easily inflated by scheduler
noise; pass ``--stat min`` to compare best-observed times instead, which is
far more robust for detecting genuine kernel regressions.

Snapshots may also carry self-describing speedup metadata (the
``BENCH_model.json`` convention): a ``speedup`` tree of computed ratios, a
``speedup_references`` map explaining *which reference epoch* each ratio's
denominator suffix refers to (frozen pre-PR timings vs rows of the same
snapshot — the distinction matters because a frozen reference silently
accumulates machine drift), and a ``speedup_floors`` map of
``<case>.<name> -> minimum``. The candidate's speedups are printed with
their reference provenance, and any floor violation fails the comparison
like a timing regression would.

A missing or unparseable *baseline* file exits 0 with a notice (first run
of a pipeline has no snapshot yet; a torn file must not fail CI forever) —
only a readable baseline that then regresses can fail the comparison.
"""

from __future__ import annotations

import argparse
import json
import sys


THROUGHPUT_NEEDLE = "_throughput_rps"
# Adaptation-recovery gauges (``--adapt`` serve bench runs): the post-swap
# error and the pre-swap error it recovered from are lower-is-better and
# compare like timings; the improvement fraction is higher-is-better and
# compares like a throughput. All three are only present when the bench ran
# the adaptation replay and the candidate actually swapped.
ADAPT_LOWER_GAUGES = (
    "serve_adaptation_recovery_pre_swap_error",
    "serve_adaptation_recovery_post_swap_error",
)
ADAPT_HIGHER_GAUGES = ("serve_adaptation_recovery_improvement_fraction",)
# Absolute budget gauges: checked against a fixed ceiling on the candidate
# snapshot alone (no baseline needed). bench_serve_trace_overhead_fraction
# is the throughput cost of running the serve bench with trace recording on
# (--trace-overhead); tracing must stay within 5% of the untraced run.
BUDGET_GAUGES = {"bench_serve_trace_overhead_fraction": 0.05}


def load_means(path: str, stat: str = "mean") -> dict:
    """Time gauges (lower is better): ``*_{stat}_seconds``."""
    with open(path) as handle:
        data = json.load(handle)
    gauges = data.get("gauges", data)
    needle = f"_{stat}_seconds"
    return {
        key: float(value)
        for key, value in gauges.items()
        if needle in key and isinstance(value, (int, float))
    }


def load_adaptation(path: str) -> tuple:
    """Adaptation-recovery gauges: ``(lower_is_better, higher_is_better)``.

    Both dicts are empty when the snapshot was not produced by an
    ``--adapt`` serve-bench run (or the run never swapped) — absent gauges
    simply opt out of the comparison, same as any other kernel.
    """
    with open(path) as handle:
        data = json.load(handle)
    gauges = data.get("gauges", data)
    lower = {
        key: float(gauges[key])
        for key in ADAPT_LOWER_GAUGES
        if isinstance(gauges.get(key), (int, float))
    }
    higher = {
        key: float(gauges[key])
        for key in ADAPT_HIGHER_GAUGES
        if isinstance(gauges.get(key), (int, float))
    }
    return lower, higher


def load_throughputs(path: str) -> dict:
    """Throughput gauges (higher is better): ``*_throughput_rps``."""
    with open(path) as handle:
        data = json.load(handle)
    gauges = data.get("gauges", data)
    return {
        key: float(value)
        for key, value in gauges.items()
        if key.endswith(THROUGHPUT_NEEDLE) and isinstance(value, (int, float))
    }


def check_budgets(path: str, budgets: dict = None) -> list:
    """Budget-gauge violations in one snapshot: ``[(gauge, value, limit)]``.

    Missing gauges never violate — the budgets only bind when the bench was
    run in the mode that produces them.
    """
    with open(path) as handle:
        data = json.load(handle)
    gauges = data.get("gauges", data)
    budgets = BUDGET_GAUGES if budgets is None else budgets
    violations = []
    for key, limit in sorted(budgets.items()):
        value = gauges.get(key)
        if isinstance(value, (int, float)) and float(value) > limit:
            violations.append((key, float(value), limit))
    return violations


def _reference_of(name: str, references: dict) -> str:
    """The provenance blurb for a ``<mode>_vs_<reference>`` speedup name."""
    for key in sorted(references, key=len, reverse=True):
        if name.endswith(f"_vs_{key}"):
            return references[key]
    return "reference not described in this snapshot"


def report_speedups(path: str) -> list:
    """Print a snapshot's speedups with provenance; return floor violations.

    Reads the ``speedup`` / ``speedup_references`` / ``speedup_floors``
    sections (absent in older snapshots — then nothing is printed and
    nothing can fail). Returns ``[(dotted_name, value, floor)]`` for every
    speedup below its declared floor.
    """
    with open(path) as handle:
        data = json.load(handle)
    speedups = data.get("speedup")
    if not isinstance(speedups, dict) or not speedups:
        return []
    references = data.get("speedup_references") or {}
    floors = data.get("speedup_floors") or {}
    violations = []
    print("\nspeedups in candidate snapshot:")
    for case in sorted(speedups):
        entries = speedups[case]
        if not isinstance(entries, dict):
            continue
        for name in sorted(entries):
            value = entries[name]
            if not isinstance(value, (int, float)):
                continue
            dotted = f"{case}.{name}"
            floor = floors.get(dotted)
            marker = ""
            if isinstance(floor, (int, float)) and float(value) < float(floor):
                violations.append((dotted, float(value), float(floor)))
                marker = f"  << BELOW FLOOR {float(floor):.2f}x"
            floor_note = (
                f" [floor {float(floor):.2f}x]" if isinstance(floor, (int, float)) else ""
            )
            print(f"  {dotted}: {float(value):.2f}x{floor_note}{marker}")
            print(f"    vs {_reference_of(name, references)}")
    return violations


def compare(before_path: str, after_path: str, threshold: float, stat: str = "mean") -> int:
    try:
        before = load_means(before_path, stat)
        before_tp = load_throughputs(before_path)
        before_lo, before_hi = load_adaptation(before_path)
    except (OSError, ValueError) as exc:
        # A missing or damaged baseline is the normal first-run state (no
        # snapshot committed yet, or a crash tore the file): there is
        # nothing to regress against, so report and succeed instead of
        # failing fresh CI pipelines with a traceback.
        print(
            f"notice: no usable baseline at {before_path} ({exc}); "
            "skipping comparison — commit a fresh snapshot to enable it"
        )
        return 0
    try:
        after = load_means(after_path, stat)
        after_tp = load_throughputs(after_path)
        after_lo, after_hi = load_adaptation(after_path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read candidate snapshot {after_path}: {exc}", file=sys.stderr)
        return 2
    shared = sorted(set(before) & set(after))
    shared_tp = sorted(set(before_tp) & set(after_tp))
    shared_lo = sorted(set(before_lo) & set(after_lo))
    shared_hi = sorted(set(before_hi) & set(after_hi))
    if not shared and not shared_tp and not shared_lo and not shared_hi:
        print(
            f"error: the snapshots share no *_{stat}_seconds or "
            f"*{THROUGHPUT_NEEDLE} gauges",
            file=sys.stderr,
        )
        return 2

    regressions = []
    width = max(len(key) for key in shared + shared_tp + shared_lo + shared_hi)
    print(f"{'kernel'.ljust(width)}  {'before':>10}  {'after':>10}  {'delta':>8}")
    for key in shared:
        old, new = before[key], after[key]
        delta = (new - old) / old if old > 0 else float("inf")
        marker = ""
        if delta > threshold:
            regressions.append((key, delta))
            marker = "  << REGRESSION"
        print(
            f"{key.ljust(width)}  {old * 1e3:9.3f}ms  {new * 1e3:9.3f}ms  "
            f"{delta * 100:+7.1f}%{marker}"
        )
    for key in shared_tp:
        old, new = before_tp[key], after_tp[key]
        # Higher is better: a *drop* beyond the threshold is the regression.
        delta = (new - old) / old if old > 0 else 0.0
        marker = ""
        if delta < -threshold:
            regressions.append((key, delta))
            marker = "  << REGRESSION"
        print(
            f"{key.ljust(width)}  {old:8.1f}r/s  {new:8.1f}r/s  "
            f"{delta * 100:+7.1f}%{marker}"
        )
    for key in shared_lo:
        old, new = before_lo[key], after_lo[key]
        # Forecast error after the hot-swap: lower is better, same rule as a
        # timing — growing beyond the threshold is the regression.
        delta = (new - old) / old if old > 0 else 0.0
        marker = ""
        if delta > threshold:
            regressions.append((key, delta))
            marker = "  << REGRESSION"
        print(
            f"{key.ljust(width)}  {old:10.3f}  {new:10.3f}  "
            f"{delta * 100:+7.1f}%{marker}"
        )
    for key in shared_hi:
        old, new = before_hi[key], after_hi[key]
        # Recovery improvement fraction: higher is better, same rule as a
        # throughput — a drop beyond the threshold is the regression.
        delta = (new - old) / old if old > 0 else 0.0
        marker = ""
        if delta < -threshold:
            regressions.append((key, delta))
            marker = "  << REGRESSION"
        print(
            f"{key.ljust(width)}  {old * 100:9.1f}%  {new * 100:9.1f}%  "
            f"{delta * 100:+7.1f}%{marker}"
        )
    seen_before = {**before, **before_tp, **before_lo, **before_hi}
    seen_after = {**after, **after_tp, **after_lo, **after_hi}
    for key in sorted(set(seen_before) ^ set(seen_after)):
        side = "before only" if key in seen_before else "after only"
        print(f"{key.ljust(width)}  ({side})")

    for key, value, limit in check_budgets(after_path):
        regressions.append((key, value))
        print(
            f"{key.ljust(width)}  {value * 100:7.1f}%  over absolute budget "
            f"{limit * 100:.0f}%  << REGRESSION"
        )

    for name, value, floor in report_speedups(after_path):
        # A speedup below its declared floor fails like a slowdown of the
        # same relative size would.
        regressions.append((name, value / floor - 1.0))

    if regressions:
        worst = max(regressions, key=lambda item: abs(item[1]))
        print(
            f"\nFAIL: {len(regressions)} kernel(s) regressed more than "
            f"{threshold * 100:.0f}% (worst: {worst[0]} {worst[1] * 100:+.1f}%)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no kernel regressed more than {threshold * 100:.0f}%")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="baseline BENCH_*.json")
    parser.add_argument("after", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional mean-time regression that fails the diff (default 0.20)",
    )
    parser.add_argument(
        "--stat",
        choices=("mean", "min"),
        default="mean",
        help="which per-kernel statistic to compare (min is robust to noise)",
    )
    args = parser.parse_args()
    return compare(args.before, args.after, args.threshold, args.stat)


if __name__ == "__main__":
    sys.exit(main())
