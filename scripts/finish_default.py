"""Regenerate the default-profile artifacts after the scaling fix.

Run as two parallel processes (one per core):

    python scripts/finish_default.py table3
    python scripts/finish_default.py ablations

Single-seed variant of the default profile to fit a CPU time budget; the
full multi-seed run is `python -m repro.experiments.run_all --profile default`.
"""

import dataclasses
import os
import sys
import time

from repro.experiments import (
    ExperimentContext,
    get_profile,
    run_fig1,
    run_fig7,
    run_table3,
    run_table4,
    run_table5,
)

OUTPUT = "results/default"


def main():
    which = sys.argv[1] if len(sys.argv) > 1 else "table3"
    profile = dataclasses.replace(get_profile("default"), seeds=(0,))
    context = ExperimentContext(profile)
    os.makedirs(OUTPUT, exist_ok=True)

    if which == "table3":
        started = time.time()
        fig1 = run_fig1(profile=profile, city=context.city)
        with open(os.path.join(OUTPUT, "fig1.txt"), "w") as handle:
            handle.write(fig1.render() + "\n")
        result = run_table3(profile=profile, context=context, verbose=True)
        with open(os.path.join(OUTPUT, "table3.txt"), "w") as handle:
            handle.write(result.render() + "\n")
            handle.write("\nMAE degradation (last/first horizon):\n")
            for model, ratio in sorted(result.degradation("MAE").items(), key=lambda kv: kv[1]):
                handle.write(f"  {model:12s} {ratio:.2f}x\n")
        print(result.render(), flush=True)
        print(f"[table3 {time.time() - started:.0f}s]", flush=True)
    elif which == "ablations":
        for name, runner, epochs in (
            ("fig7", run_fig7, 16),
            ("table4", run_table4, 16),
            ("table5", run_table5, 16),
        ):
            started = time.time()
            result = runner(profile=profile, context=context, verbose=True, epochs=epochs)
            with open(os.path.join(OUTPUT, f"{name}.txt"), "w") as handle:
                handle.write(result.render() + "\n")
            print(result.render(), flush=True)
            print(f"[{name} {time.time() - started:.0f}s]", flush=True)
    else:
        raise SystemExit(f"unknown target {which!r}")


if __name__ == "__main__":
    main()
