#!/usr/bin/env python
"""Import-direction lint for the layered architecture.

The stack (see docs/ARCHITECTURE.md) is, bottom to top::

    faults / obs / pipeline-leaves / store
        →  nn / city / graph / boosting / data / metrics
        →  resilience
        →  core / baselines  →  pipeline
        →  experiments | serve   (siblings, no cross-import)

Rules enforced (each import must point *down* the stack):

1. ``repro.pipeline.seeding``, ``repro.pipeline.forecast`` and
   ``repro.faults`` are dependency-free leaves: they import no other
   ``repro`` module. They are the sanctioned exceptions that let every
   layer share the central RNG policy, the forecast protocol and the
   fault-injection hooks without an import cycle.
2. The substrate layers (``nn``, ``obs``, ``city``, ``graph``,
   ``boosting``, ``data``, ``metrics``) must not import ``resilience``,
   ``core``, ``baselines``, ``experiments`` or any non-leaf ``pipeline``
   module.
3. ``resilience`` sits just above the substrate: it may import ``nn``,
   ``obs``, ``repro.faults`` and the pipeline leaves, but never
   ``core``/``baselines``, non-leaf ``pipeline`` modules,
   ``experiments`` or ``serve`` (the pipeline builds *on* recovery, not
   the other way around).
4. The model layers (``core``, ``baselines``) must not import
   ``experiments`` or non-leaf ``pipeline`` modules.
5. ``pipeline`` must not import ``experiments``.
6. ``experiments`` must not import ``baselines`` or ``core``: every model
   is constructed through the pipeline registry + RunSpec.
7. ``serve`` sits beside ``experiments`` at the top of the stack: it may
   import ``pipeline``, ``obs`` and the substrate, but never
   ``experiments`` — and, like experiments, never ``core``/``baselines``
   directly (models come from the registry). ``experiments`` must not
   import ``serve`` either: offline and online stay decoupled.
8. ``repro.obs.drift`` is a dependency-free leaf like ``repro.faults``:
   pure detector math (stdlib only), so any layer — including a future
   online fine-tune trigger — can score drift without pulling in the rest
   of ``obs``. The runlog/metrics wiring lives in ``repro.serve.monitor``.
9. ``serve`` must not import ``repro.obs.report``: report is the offline
   run-log renderer; the online path exposes state through
   ``repro.obs.serve_metrics`` instead.
10. ``repro.nn.fusion`` is a pure executor below the model layers: it may
    import only ``repro.nn.ops``, ``repro.nn.engine`` and
    ``repro.nn.tensor``. Fused kernels replay op chains the models build;
    if fusion ever imported a layer or a model, the "bit-equivalent
    replacement for an existing subgraph" contract would become circular.
11. ``repro.store`` is the self-contained window/feature-store leaf
    package: its modules may import only the stdlib, numpy and each other
    — any layer may build on the store, the store builds on nothing. And
    window slicing *routes through it*: the stride-trick primitives
    (``sliding_window_view`` / ``as_strided``) are banned outside
    ``repro/store/`` (except ``repro.nn.ops``, whose conv kernels lower to
    im2col with the same helpers), and ``repro.data.windows`` (the eager
    compat shim) must import the store rather than re-deriving window math.
12. ``repro.serve.gateway`` is the HTTP edge: it speaks stdlib on one side
    and ``repro.serve`` on the other. Its ``repro`` imports must all live
    under ``repro.serve`` (observability surfaces are re-exported through
    ``repro.serve.shard``) and its external imports must be stdlib — not
    even numpy, so the wire format stays plain JSON lists. ``serve.shard``
    itself is bound by the ordinary serve rules (rule 7): never
    ``experiments``, never ``core``/``baselines``.
13. ``repro.serve.adapt`` (the online fine-tune loop) reaches training
    machinery only through two defined seams: its ``pipeline`` imports are
    restricted to ``repro.pipeline.loading`` / ``repro.pipeline.spec``
    (models are rebuilt and warm-started exactly the way the serving
    loader does — never via the runner or the registry directly), and its
    recovery imports to the ``repro.resilience`` package surface. This
    keeps the adaptation loop swappable against the offline funnel: both
    train through the same recovery policy and build through the same
    loading path.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_ROOT = os.path.join(REPO_ROOT, "src", "repro")

PIPELINE_LEAVES = {"repro.pipeline.seeding", "repro.pipeline.forecast"}
# Dependency-free leaf *modules* directly under repro (importable from any
# layer; themselves import no repro code).
ROOT_LEAVES = {"repro.faults"}
# Dependency-free leaves nested inside a substrate package (rule 8).
NESTED_LEAVES = {"repro.obs.drift"}
SUBSTRATE = {"nn", "obs", "city", "graph", "boosting", "data", "metrics"}
MODEL_LAYERS = {"core", "baselines"}
# Rule 10: the fused-kernel executor may touch only the op/engine/tensor
# surfaces of its own package.
NN_FUSION_ALLOWED = {"repro.nn.ops", "repro.nn.engine", "repro.nn.tensor"}
# Rule 11: the window/feature store is a leaf package (stdlib + numpy only)
# and owns the stride-trick *time-window* primitives. repro.nn.ops is the
# one exemption: conv kernels lower to im2col via the same numpy helpers,
# which is patch extraction inside a kernel, not supervised window slicing.
STORE_EXTERNAL_ALLOWED = {"numpy", "__future__"}
STRIDE_TRICK_NAMES = {"sliding_window_view", "as_strided"}
STRIDE_TRICK_EXEMPT_PREFIX = "repro.nn.ops"
# Rule 12: the HTTP gateway is stdlib + repro.serve only.
GATEWAY_MODULE = "repro.serve.gateway"
# Rule 13: the online-adaptation loop touches training machinery only
# through the loading/spec and resilience-package seams.
ADAPT_MODULE = "repro.serve.adapt"
ADAPT_PIPELINE_ALLOWED = {"repro.pipeline.loading", "repro.pipeline.spec"}
ADAPT_RESILIENCE_ALLOWED = {"repro.resilience"}


def _module_name(path: str, base: str) -> str:
    relative = os.path.relpath(path, base)
    name = relative[: -len(".py")].replace(os.sep, ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _imported_modules(path: str):
    """Absolute ``repro.*`` module names a file imports.

    ``from repro.pipeline import seeding`` resolves to
    ``repro.pipeline.seeding`` (plus the package itself) so leaf imports
    can be told apart from registry/runner imports.
    """
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    imported.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports are not used in this repo
                continue
            if node.module and node.module.startswith("repro"):
                if node.module in ("repro", "repro.pipeline", "repro.obs", "repro.nn"):
                    # Resolve the imported names so leaf submodules
                    # (faults, seeding/forecast) can be told apart from
                    # package-level / top-of-stack imports — `from repro
                    # import faults` must lint as repro.faults, not as the
                    # unclassifiable bare package.
                    for alias in node.names:
                        imported.add(f"{node.module}.{alias.name}")
                else:
                    imported.add(node.module)
    return imported


def _external_imports(path: str):
    """Top-level names of all non-``repro`` modules a file imports."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root != "repro":
                    imported.add(root)
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            root = node.module.split(".")[0]
            if root != "repro":
                imported.add(root)
    return imported


def _stride_trick_uses(path: str):
    """Stride-trick identifiers (rule 11) referenced anywhere in a file."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id in STRIDE_TRICK_NAMES:
            used.add(node.id)
        elif isinstance(node, ast.Attribute) and node.attr in STRIDE_TRICK_NAMES:
            used.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                name = alias.name.split(".")[-1]
                if name in STRIDE_TRICK_NAMES:
                    used.add(name)
    return used


def _subpackage(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


def _is_nonleaf_pipeline(module: str) -> bool:
    if _subpackage(module) != "pipeline":
        return False
    if module in PIPELINE_LEAVES:
        return False
    # "repro.pipeline" itself only eagerly loads the leaves (PEP 562 lazy
    # init), so importing the package from a low layer is leaf-equivalent.
    # Anything deeper (registry, spec, runner, checkpoint) is top-of-stack.
    return module != "repro.pipeline"


def check(source_root: str = SOURCE_ROOT):
    base = os.path.dirname(source_root)  # the directory holding `repro/`
    violations = []
    for directory, _subdirs, files in os.walk(source_root):
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            module = _module_name(path, base)
            layer = _subpackage(module)
            imported = _imported_modules(path)
            location = os.path.relpath(path, base)

            if layer == "store":
                # Rule 11a: the store is a leaf — stdlib + numpy only.
                for external in sorted(_external_imports(path) - STORE_EXTERNAL_ALLOWED):
                    if external not in sys.stdlib_module_names:
                        violations.append(
                            f"{location}: imports {external} "
                            "(repro.store allows only the stdlib and numpy)"
                        )
            elif not module.startswith(STRIDE_TRICK_EXEMPT_PREFIX):
                # Rule 11b: stride-trick window primitives live in the store.
                for name in sorted(_stride_trick_uses(path)):
                    violations.append(
                        f"{location}: uses {name} "
                        "(window stride tricks live only in repro.store)"
                    )

            if module == GATEWAY_MODULE:
                # Rule 12a: the gateway's non-repro imports must be stdlib.
                for external in sorted(_external_imports(path)):
                    if external not in sys.stdlib_module_names:
                        violations.append(
                            f"{location}: imports {external} "
                            "(serve.gateway allows only stdlib externals — "
                            "the wire format is plain JSON)"
                        )

            def forbid(condition, target, rule):
                if condition:
                    violations.append(f"{location}: imports {target} ({rule})")

            for target in sorted(imported):
                target_layer = _subpackage(target)
                if module in ROOT_LEAVES or module in NESTED_LEAVES:
                    forbid(
                        True,
                        target,
                        f"{module} is a dependency-free leaf (numpy/stdlib only)",
                    )
                elif module in PIPELINE_LEAVES:
                    forbid(
                        target not in PIPELINE_LEAVES and target != "repro.pipeline",
                        target,
                        "pipeline leaves must be dependency-free",
                    )
                elif module == "repro.nn.fusion":
                    forbid(
                        target not in NN_FUSION_ALLOWED,
                        target,
                        "nn.fusion is a pure executor: it may import only "
                        "nn.ops/nn.engine/nn.tensor",
                    )
                elif layer == "store":
                    forbid(
                        target_layer != "store",
                        target,
                        "repro.store is a self-contained leaf: it imports "
                        "only stdlib/numpy and its own modules",
                    )
                elif layer in SUBSTRATE:
                    forbid(
                        target_layer in MODEL_LAYERS | {"experiments", "serve", "resilience"},
                        target,
                        f"substrate layer '{layer}' must not import model/top layers",
                    )
                    forbid(
                        _is_nonleaf_pipeline(target),
                        target,
                        f"substrate layer '{layer}' may only use pipeline leaves",
                    )
                elif layer == "resilience":
                    forbid(
                        target_layer
                        in MODEL_LAYERS | {"experiments", "serve", "pipeline"}
                        and not (
                            target in PIPELINE_LEAVES or target == "repro.pipeline"
                        ),
                        target,
                        "resilience may import only nn/obs/faults and pipeline leaves",
                    )
                elif layer in MODEL_LAYERS:
                    forbid(
                        target_layer in {"experiments", "serve"},
                        target,
                        f"model layer '{layer}' must not import top layers",
                    )
                    forbid(
                        _is_nonleaf_pipeline(target),
                        target,
                        f"model layer '{layer}' may only use pipeline leaves",
                    )
                elif layer == "pipeline":
                    forbid(
                        target_layer in {"experiments", "serve"},
                        target,
                        "pipeline must not import top layers (experiments/serve)",
                    )
                elif layer == "experiments":
                    forbid(
                        target_layer in MODEL_LAYERS,
                        target,
                        "experiments construct models via the pipeline registry only",
                    )
                    forbid(
                        target_layer == "serve",
                        target,
                        "experiments (offline) must not import serve (online)",
                    )
                elif layer == "serve":
                    # Rule 12b: the gateway reaches everything (obs, numpy
                    # types) through repro.serve re-exports, nothing else.
                    forbid(
                        module == GATEWAY_MODULE
                        and not target.startswith("repro.serve"),
                        target,
                        "serve.gateway imports only repro.serve "
                        "(obs surfaces are re-exported via serve.shard)",
                    )
                    forbid(
                        target_layer == "experiments",
                        target,
                        "serve (online) must not import experiments (offline)",
                    )
                    forbid(
                        target_layer in MODEL_LAYERS,
                        target,
                        "serve constructs models via the pipeline registry only",
                    )
                    forbid(
                        target == "repro.obs.report",
                        target,
                        "serve exposes live state via obs.serve_metrics, "
                        "not the offline report renderer",
                    )
                    # Rule 13: adaptation's training access goes through
                    # two seams, nothing else.
                    forbid(
                        module == ADAPT_MODULE
                        and target_layer == "pipeline"
                        and target not in ADAPT_PIPELINE_ALLOWED,
                        target,
                        "serve.adapt reaches the pipeline only through the "
                        "loading/spec seams",
                    )
                    forbid(
                        module == ADAPT_MODULE
                        and target_layer == "resilience"
                        and target not in ADAPT_RESILIENCE_ALLOWED,
                        target,
                        "serve.adapt reaches recovery only through the "
                        "repro.resilience package surface",
                    )
    # Rule 11c (positive): the eager compat shim routes through the store
    # instead of re-deriving window math.
    windows_shim = os.path.join(source_root, "data", "windows.py")
    if os.path.exists(windows_shim):
        shim_imports = _imported_modules(windows_shim)
        if not any(
            target == "repro.store" or target.startswith("repro.store.")
            for target in shim_imports
        ):
            violations.append(
                "repro/data/windows.py: does not import repro.store "
                "(window slicing must route through the store)"
            )
    return violations


def main() -> int:
    violations = check()
    if violations:
        print(f"{len(violations)} layering violation(s):")
        for line in violations:
            print(f"  {line}")
        return 1
    print("layering OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
